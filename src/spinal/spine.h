#pragma once
// Spine construction (§3.1): s_i = h(s_{i-1}, m̄_i), s_0 given, where
// m̄_i is the i-th k-bit chunk of the message.

#include <cstdint>
#include <vector>

#include "hash/spine_hash.h"
#include "spinal/params.h"
#include "util/bitvec.h"

namespace spinal {

/// Computes the spine values s_1 .. s_{n/k} for @p message (element 0 of
/// the result is s_1). The message must have exactly params.n bits.
/// Throws std::invalid_argument on a size mismatch.
std::vector<std::uint32_t> compute_spine(const CodeParams& params,
                                         const hash::SpineHash& h,
                                         const util::BitVec& message);

/// Batched spine construction for @p count equal-length messages
/// (frame pipelines encode many messages against one CodeParams).
/// Returns the spines chain-major: element j * spine_length + i is
/// s_{i+1} of message j. Bit-identical to calling compute_spine per
/// message; the independent chains are walked interleaved
/// (SpineHash::spine_walk_n), which hides the serial per-chain hash
/// latency that bounds single-message construction.
std::vector<std::uint32_t> compute_spine_n(const CodeParams& params,
                                           const hash::SpineHash& h,
                                           const util::BitVec* messages,
                                           std::size_t count);

}  // namespace spinal
