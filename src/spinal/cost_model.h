#pragma once
// The decoder cost model of §4.5, as code: per-decode-attempt counts of
// hash/RNG evaluations, selection comparisons and storage, so designers
// can budget hardware the way §7/§8.4 do (B chosen "subject to a
// compute budget"; the Fig 8-6 x-axis is branch evaluations per bit).
//
// This header also defines the *quantized* cost representation used by
// the narrow-metric decode path (CostPrecision::kU16 / kU8):
//
//   Scaling.  A per-symbol branch metric |y - x|^2 is mapped to an
//   integer grid q = min(round(|y - x|^2 * S), cap) with
//     u16:  S = 2^4 = 16,  cap = 65535  (per-dimension and combined)
//     u8:   S = 2^3 = 8,   cap = 255    (coarser grid, 8-bit clamp)
//   The u16 scale is deliberately modest: after per-level
//   renormalization a level's surviving cost spread then fits a single
//   byte of the packed (cost << 16 | candidate) selection key, which
//   is what bounds the radix select/partition pass count — at S = 2^6
//   the spread spilled into a second key byte and the selection phases
//   measurably outweighed the finer grid's (unmeasurable) BLER gain.
//   Per received symbol the decoder pre-tabulates the combined
//   re+im metric over all 2^(2c) constellation index pairs, so the hot
//   kernel performs one integer table gather + one saturating add per
//   child per symbol. The u8 mode narrows only the per-symbol grid and
//   clamp; path accumulation always rides the 16-bit saturating lanes
//   (a true 8-bit path accumulator would wrap within a handful of
//   symbols at B=256 cost spreads — see README "Performance").
//
//   Saturation.  Path metrics accumulate with saturating adds, so a
//   path cost is exactly min(sum of scaled branch metrics, 65535) at
//   every point of the pipeline. Saturating adds are monotone
//   (satadd(p, m) >= p), which keeps every admissible-bound prune of
//   the streaming search exact in the quantized domain.
//
//   Renormalization (offset scheme).  After each beam step the decoder
//   subtracts the minimum surviving path metric from all survivors and
//   accumulates the subtracted offsets in a wide integer. Relative
//   order — all the beam search looks at — is unchanged, metrics never
//   wrap, and the reported float path cost is reconstructed as
//   (offset_sum + best_metric) / S.
//
// The f32 path stays the golden reference; quantized decodes are
// bit-identical across backends (pure integer kernels) and only
// statistically equivalent to f32 (BLER-delta gated).

#include <cstdint>

#include "spinal/params.h"

namespace spinal {

/// Fixed-point scale S = 2^frac applied to |y - x|^2 before rounding
/// to the integer metric grid.
constexpr float cost_quant_scale(CostPrecision p) noexcept {
  return p == CostPrecision::kU8 ? 8.0f : 16.0f;
}

/// Per-symbol combined-metric clamp: 255 for the u8 grid, 65535 for u16.
constexpr std::uint32_t cost_quant_cap(CostPrecision p) noexcept {
  return p == CostPrecision::kU8 ? 255u : 65535u;
}

/// Resolves the effective cost precision for a decode: the
/// SPINAL_COST_PRECISION environment override ("f32", "u16", "u8" —
/// read once, mirroring SPINAL_BACKEND) wins over the per-params knob;
/// an unrecognised value warns once on stderr and falls back to
/// @p configured.
CostPrecision resolve_cost_precision(CostPrecision configured) noexcept;

struct DecodeCost {
  long steps;             ///< beam advances: n/k - d + 1
  int bits_per_step;      ///< message bits committed per step (= k)
  long nodes_explored;    ///< B 2^(kd) per step, summed
  long hash_evals;        ///< one spine-hash per explored node
  long rng_evals;         ///< L per explored node (L = passes received)
  long comparisons;       ///< selection work: ~B 2^k per step
  long beam_storage_bits; ///< leaves: B 2^(k(d-1)) x (state+cost+path)
  long backtrack_bits;    ///< arena: (n/k) B (k + log2 B)

  /// §4.5's headline number: branch evaluations per message bit,
  /// ~ B 2^k / k per pass (the Fig 8-6 budget axis for L = 1).
  double branch_evals_per_bit() const noexcept;
};

/// Cost of one decode attempt with @p passes_received passes buffered.
DecodeCost decode_attempt_cost(const CodeParams& params, int passes_received);

}  // namespace spinal
