#pragma once
// The decoder cost model of §4.5, as code: per-decode-attempt counts of
// hash/RNG evaluations, selection comparisons and storage, so designers
// can budget hardware the way §7/§8.4 do (B chosen "subject to a
// compute budget"; the Fig 8-6 x-axis is branch evaluations per bit).

#include "spinal/params.h"

namespace spinal {

struct DecodeCost {
  long steps;             ///< beam advances: n/k - d + 1
  int bits_per_step;      ///< message bits committed per step (= k)
  long nodes_explored;    ///< B 2^(kd) per step, summed
  long hash_evals;        ///< one spine-hash per explored node
  long rng_evals;         ///< L per explored node (L = passes received)
  long comparisons;       ///< selection work: ~B 2^k per step
  long beam_storage_bits; ///< leaves: B 2^(k(d-1)) x (state+cost+path)
  long backtrack_bits;    ///< arena: (n/k) B (k + log2 B)

  /// §4.5's headline number: branch evaluations per message bit,
  /// ~ B 2^k / k per pass (the Fig 8-6 budget axis for L = 1).
  double branch_evals_per_bit() const noexcept;
};

/// Cost of one decode attempt with @p passes_received passes buffered.
DecodeCost decode_attempt_cost(const CodeParams& params, int passes_received);

}  // namespace spinal
