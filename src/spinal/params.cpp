#include "spinal/params.h"

#include <stdexcept>
#include <string>

namespace spinal {

void CodeParams::validate() const {
  auto fail = [](const std::string& msg) { throw std::invalid_argument("CodeParams: " + msg); };

  if (n < 1) fail("n must be >= 1");
  if (k < 1 || k > 8) fail("k must be in [1, 8]");
  if (c < 1 || c > 15) fail("c must be in [1, 15]");
  if (B < 1) fail("B must be >= 1");
  if (d < 1) fail("d must be >= 1");
  if (tail_symbols < 0) fail("tail_symbols must be >= 0");
  if (puncture_ways != 1 && puncture_ways != 2 && puncture_ways != 4 && puncture_ways != 8)
    fail("puncture_ways must be 1, 2, 4 or 8");
  if (power <= 0) fail("power must be positive");
  if (beta <= 0) fail("beta must be positive");
  if (max_passes < 1) fail("max_passes must be >= 1");
  if (fixed_point_frac_bits < 0 || fixed_point_frac_bits > 12)
    fail("fixed_point_frac_bits must be in [0, 12]");

  // BeamSearch packs a subtree path of d chunks, k bits each, into one
  // 32-bit word (beam_search.h leaf_path), so k*d <= 32 is a hard
  // correctness bound: beyond it paths would silently corrupt. The
  // working-set limit below is currently tighter, but this check is
  // what must survive if that operational limit is ever relaxed.
  const int kd = k * d;
  if (kd > 32)
    fail("k*d must be <= 32 (bubble-search path words are 32-bit; "
         "k*d bits of path are packed per subtree)");

  // Bound the decoder working set: B * 2^(k*d) nodes per step.
  if (kd > 24) fail("k*d too large (limit 24)");
  const double nodes = static_cast<double>(B) * static_cast<double>(1u << kd);
  if (nodes > (1u << 26)) fail("B * 2^(k*d) exceeds the 2^26 working-set limit");
}

}  // namespace spinal
