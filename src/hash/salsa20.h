#pragma once
// Salsa20 core (D. Bernstein), the cryptographic-strength hash the
// authors evaluated before settling on one-at-a-time (§7.1). We expose
// the 20-round core permutation plus a compression-style wrapper with
// the (state, data, salt) signature the spine construction needs.

#include <cstdint>

namespace spinal::hash {

/// Runs the Salsa20/20 core on @p in, writing 16 output words to @p out.
/// out = core_permutation(in) + in, per the specification.
void salsa20_core(const std::uint32_t in[16], std::uint32_t out[16]) noexcept;

/// Hashes a (state, data) pair into 32 bits through the Salsa20 core.
/// The input block packs the sigma constants with state/data/salt so
/// distinct inputs produce unrelated blocks.
std::uint32_t salsa20_pair(std::uint32_t state, std::uint32_t data,
                           std::uint32_t salt) noexcept;

}  // namespace spinal::hash
