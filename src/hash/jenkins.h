#pragma once
// Bob Jenkins' hash functions used by the paper (§7.1): the
// "one-at-a-time" hash (the default h in the authors' implementation
// and experiments: 6 XORs, 15 shifts, 10 additions per application) and
// lookup3's hashword() for word-aligned keys.

#include <cstddef>
#include <cstdint>

namespace spinal::hash {

/// One-at-a-time over raw bytes, starting from @p seed.
std::uint32_t one_at_a_time(const std::uint8_t* key, std::size_t len,
                            std::uint32_t seed) noexcept;

/// One-at-a-time specialised for the spinal spine update: mixes a 32-bit
/// word (state-or-data) into a running 32-bit hash. Equivalent to
/// feeding the four little-endian bytes of @p word into the byte version.
inline std::uint32_t one_at_a_time_word(std::uint32_t seed, std::uint32_t word) noexcept {
  std::uint32_t h = seed;
  for (int i = 0; i < 4; ++i) {
    h += (word >> (8 * i)) & 0xFF;
    h += h << 10;
    h ^= h >> 6;
  }
  h += h << 3;
  h ^= h >> 11;
  h += h << 15;
  return h;
}

/// lookup3 hashword() over an array of uint32 keys.
std::uint32_t lookup3_hashword(const std::uint32_t* k, std::size_t length,
                               std::uint32_t initval) noexcept;

/// lookup3 specialised for a (state, data) pair.
inline std::uint32_t lookup3_pair(std::uint32_t state, std::uint32_t data,
                                  std::uint32_t initval) noexcept {
  const std::uint32_t k[2] = {state, data};
  return lookup3_hashword(k, 2, initval);
}

}  // namespace spinal::hash
