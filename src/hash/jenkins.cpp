#include "hash/jenkins.h"

#include <bit>

namespace spinal::hash {

std::uint32_t one_at_a_time(const std::uint8_t* key, std::size_t len,
                            std::uint32_t seed) noexcept {
  std::uint32_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h += key[i];
    h += h << 10;
    h ^= h >> 6;
  }
  h += h << 3;
  h ^= h >> 11;
  h += h << 15;
  return h;
}

namespace {

inline void mix(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c) noexcept {
  a -= c; a ^= std::rotl(c, 4);  c += b;
  b -= a; b ^= std::rotl(a, 6);  a += c;
  c -= b; c ^= std::rotl(b, 8);  b += a;
  a -= c; a ^= std::rotl(c, 16); c += b;
  b -= a; b ^= std::rotl(a, 19); a += c;
  c -= b; c ^= std::rotl(b, 4);  b += a;
}

inline void final_mix(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c) noexcept {
  c ^= b; c -= std::rotl(b, 14);
  a ^= c; a -= std::rotl(c, 11);
  b ^= a; b -= std::rotl(a, 25);
  c ^= b; c -= std::rotl(b, 16);
  a ^= c; a -= std::rotl(c, 4);
  b ^= a; b -= std::rotl(a, 14);
  c ^= b; c -= std::rotl(b, 24);
}

}  // namespace

std::uint32_t lookup3_hashword(const std::uint32_t* k, std::size_t length,
                               std::uint32_t initval) noexcept {
  std::uint32_t a, b, c;
  a = b = c = 0xdeadbeef + (static_cast<std::uint32_t>(length) << 2) + initval;

  while (length > 3) {
    a += k[0];
    b += k[1];
    c += k[2];
    mix(a, b, c);
    length -= 3;
    k += 3;
  }

  switch (length) {
    case 3: c += k[2]; [[fallthrough]];
    case 2: b += k[1]; [[fallthrough]];
    case 1:
      a += k[0];
      final_mix(a, b, c);
      break;
    case 0:
      break;
  }
  return c;
}

}  // namespace spinal::hash
