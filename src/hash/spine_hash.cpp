#include "hash/spine_hash.h"

#include "hash/jenkins.h"
#include "hash/salsa20.h"

namespace spinal::hash {

std::string kind_name(Kind kind) {
  switch (kind) {
    case Kind::kOneAtATime: return "one-at-a-time";
    case Kind::kLookup3: return "lookup3";
    case Kind::kSalsa20: return "salsa20";
  }
  return "unknown";
}

std::uint32_t SpineHash::operator()(std::uint32_t state,
                                    std::uint32_t data) const noexcept {
  switch (kind_) {
    case Kind::kOneAtATime:
      // Fold the salt into the initial value, then mix state and data.
      return one_at_a_time_word(one_at_a_time_word(salt_ ^ 0x2545F491u, state), data);
    case Kind::kLookup3:
      return lookup3_pair(state, data, salt_);
    case Kind::kSalsa20:
      return salsa20_pair(state, data, salt_);
  }
  return 0;
}

}  // namespace spinal::hash
