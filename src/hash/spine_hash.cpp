#include "hash/spine_hash.h"

#include "backend/backend.h"
#include "hash/jenkins.h"
#include "hash/salsa20.h"

namespace spinal::hash {

std::string kind_name(Kind kind) {
  switch (kind) {
    case Kind::kOneAtATime: return "one-at-a-time";
    case Kind::kLookup3: return "lookup3";
    case Kind::kSalsa20: return "salsa20";
  }
  return "unknown";
}

std::uint32_t SpineHash::operator()(std::uint32_t state,
                                    std::uint32_t data) const noexcept {
  switch (kind_) {
    case Kind::kOneAtATime:
      // Fold the salt into the initial value, then mix state and data.
      return one_at_a_time_word(one_at_a_time_word(salt_ ^ 0x2545F491u, state), data);
    case Kind::kLookup3:
      return lookup3_pair(state, data, salt_);
    case Kind::kSalsa20:
      return salsa20_pair(state, data, salt_);
  }
  return 0;
}

// The batched forms route through the active kernel backend (scalar /
// SSE4.2 / AVX2 / NEON — see backend/backend.h). Every backend is
// bit-identical to looping operator(), so callers never observe which
// one ran.

void SpineHash::hash_n(const std::uint32_t* states, std::size_t count,
                       std::uint32_t data, std::uint32_t* out) const noexcept {
  backend::active().hash_n(kind_, salt_, states, count, data, out);
}

void SpineHash::premix_n(const std::uint32_t* states, std::size_t count,
                         std::uint32_t* out) const noexcept {
  backend::active().premix_n(salt_, states, count, out);
}

void SpineHash::hash_premixed_n(const std::uint32_t* premixed, std::size_t count,
                                std::uint32_t data, std::uint32_t* out) const noexcept {
  backend::active().hash_premixed_n(premixed, count, data, out);
}

void SpineHash::hash_children(const std::uint32_t* states, std::size_t count,
                              std::uint32_t fanout, std::uint32_t* out) const noexcept {
  backend::active().hash_children(kind_, salt_, states, count, fanout, out);
}

}  // namespace spinal::hash
