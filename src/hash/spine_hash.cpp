#include "hash/spine_hash.h"

#include <algorithm>

#include "hash/jenkins.h"
#include "hash/salsa20.h"

namespace spinal::hash {

std::string kind_name(Kind kind) {
  switch (kind) {
    case Kind::kOneAtATime: return "one-at-a-time";
    case Kind::kLookup3: return "lookup3";
    case Kind::kSalsa20: return "salsa20";
  }
  return "unknown";
}

std::uint32_t SpineHash::operator()(std::uint32_t state,
                                    std::uint32_t data) const noexcept {
  switch (kind_) {
    case Kind::kOneAtATime:
      // Fold the salt into the initial value, then mix state and data.
      return one_at_a_time_word(one_at_a_time_word(salt_ ^ 0x2545F491u, state), data);
    case Kind::kLookup3:
      return lookup3_pair(state, data, salt_);
    case Kind::kSalsa20:
      return salsa20_pair(state, data, salt_);
  }
  return 0;
}

void SpineHash::hash_n(const std::uint32_t* states, std::size_t count,
                       std::uint32_t data, std::uint32_t* out) const noexcept {
  switch (kind_) {
    case Kind::kOneAtATime: {
      const std::uint32_t seed = salt_ ^ 0x2545F491u;
      for (std::size_t i = 0; i < count; ++i)
        out[i] = one_at_a_time_word(one_at_a_time_word(seed, states[i]), data);
      break;
    }
    case Kind::kLookup3:
      for (std::size_t i = 0; i < count; ++i)
        out[i] = lookup3_pair(states[i], data, salt_);
      break;
    case Kind::kSalsa20:
      for (std::size_t i = 0; i < count; ++i)
        out[i] = salsa20_pair(states[i], data, salt_);
      break;
  }
}

void SpineHash::premix_n(const std::uint32_t* states, std::size_t count,
                         std::uint32_t* out) const noexcept {
  const std::uint32_t seed = salt_ ^ 0x2545F491u;
  const std::uint32_t* __restrict in = states;
  std::uint32_t* __restrict o = out;
  for (std::size_t i = 0; i < count; ++i) o[i] = one_at_a_time_word(seed, in[i]);
}

void SpineHash::hash_premixed_n(const std::uint32_t* premixed, std::size_t count,
                                std::uint32_t data, std::uint32_t* out) const noexcept {
  const std::uint32_t* __restrict in = premixed;
  std::uint32_t* __restrict o = out;
  for (std::size_t i = 0; i < count; ++i) o[i] = one_at_a_time_word(in[i], data);
}

void SpineHash::hash_children(const std::uint32_t* states, std::size_t count,
                              std::uint32_t fanout, std::uint32_t* out) const noexcept {
  if (kind_ == Kind::kOneAtATime) {
    // The state pre-mix is chunk-independent: compute it once per lane
    // block, then mix each chunk value against the whole block. The
    // block keeps the premix in cache while staying vectoriser-sized.
    const std::uint32_t seed = salt_ ^ 0x2545F491u;
    constexpr std::size_t kBlock = 256;
    std::uint32_t premix[kBlock];
    for (std::size_t base = 0; base < count; base += kBlock) {
      const std::size_t m = std::min(kBlock, count - base);
      for (std::size_t i = 0; i < m; ++i)
        premix[i] = one_at_a_time_word(seed, states[base + i]);
      for (std::uint32_t v = 0; v < fanout; ++v) {
        std::uint32_t* dst = out + static_cast<std::size_t>(v) * count + base;
        for (std::size_t i = 0; i < m; ++i) dst[i] = one_at_a_time_word(premix[i], v);
      }
    }
    return;
  }
  for (std::uint32_t v = 0; v < fanout; ++v)
    hash_n(states, count, v, out + static_cast<std::size_t>(v) * count);
}

}  // namespace spinal::hash
