#include "hash/spine_hash.h"

#include "backend/backend.h"
#include "hash/jenkins.h"
#include "hash/salsa20.h"

namespace spinal::hash {

std::string kind_name(Kind kind) {
  switch (kind) {
    case Kind::kOneAtATime: return "one-at-a-time";
    case Kind::kLookup3: return "lookup3";
    case Kind::kSalsa20: return "salsa20";
  }
  return "unknown";
}

std::uint32_t SpineHash::operator()(std::uint32_t state,
                                    std::uint32_t data) const noexcept {
  switch (kind_) {
    case Kind::kOneAtATime:
      // Fold the salt into the initial value, then mix state and data.
      return one_at_a_time_word(one_at_a_time_word(salt_ ^ 0x2545F491u, state), data);
    case Kind::kLookup3:
      return lookup3_pair(state, data, salt_);
    case Kind::kSalsa20:
      return salsa20_pair(state, data, salt_);
  }
  return 0;
}

// The batched forms route through the active kernel backend (scalar /
// SSE4.2 / AVX2 / NEON — see backend/backend.h). Every backend is
// bit-identical to looping operator(), so callers never observe which
// one ran.

void SpineHash::hash_n(const std::uint32_t* states, std::size_t count,
                       std::uint32_t data, std::uint32_t* out) const noexcept {
  backend::active().hash_n(kind_, salt_, states, count, data, out);
}

void SpineHash::premix_n(const std::uint32_t* states, std::size_t count,
                         std::uint32_t* out) const noexcept {
  backend::active().premix_n(salt_, states, count, out);
}

void SpineHash::hash_premixed_n(const std::uint32_t* premixed, std::size_t count,
                                std::uint32_t data, std::uint32_t* out) const noexcept {
  backend::active().hash_premixed_n(premixed, count, data, out);
}

void SpineHash::hash_children(const std::uint32_t* states, std::size_t count,
                              std::uint32_t fanout, std::uint32_t* out) const noexcept {
  backend::active().hash_children(kind_, salt_, states, count, fanout, out);
}

namespace {

// N independent one-at-a-time chains, software-pipelined: per step the
// N state pre-mixes issue together, then the N data mixes. N is a
// compile-time constant so the short loops fully unroll and the
// independent mix chains interleave in the pipeline; the serial
// dependency is per chain only. Bit-identical to SpineHash::operator()
// per chain by construction (same two-word mix, same seed fold).
template <int N>
void walk_oaat(std::uint32_t seed, const std::uint32_t* seeds,
               const std::uint32_t* data, std::size_t length,
               std::uint32_t* out) noexcept {
  std::uint32_t s[N];
  for (int j = 0; j < N; ++j) s[j] = seeds[j];
  for (std::size_t t = 0; t < length; ++t) {
    std::uint32_t pre[N];
    for (int j = 0; j < N; ++j) pre[j] = one_at_a_time_word(seed, s[j]);
    for (int j = 0; j < N; ++j)
      s[j] = one_at_a_time_word(pre[j], data[j * length + t]);
    for (int j = 0; j < N; ++j) out[j * length + t] = s[j];
  }
}

}  // namespace

void SpineHash::spine_walk_n(const std::uint32_t* seeds, std::size_t chains,
                             const std::uint32_t* data, std::size_t length,
                             std::uint32_t* out) const noexcept {
  if (kind_ == Kind::kOneAtATime) {
    const std::uint32_t seed = salt_ ^ 0x2545F491u;  // operator()'s seed fold
    std::size_t j = 0;
    for (; j + 4 <= chains; j += 4)
      walk_oaat<4>(seed, seeds + j, data + j * length, length, out + j * length);
    switch (chains - j) {
      case 3: walk_oaat<3>(seed, seeds + j, data + j * length, length, out + j * length); break;
      case 2: walk_oaat<2>(seed, seeds + j, data + j * length, length, out + j * length); break;
      case 1: walk_oaat<1>(seed, seeds + j, data + j * length, length, out + j * length); break;
      default: break;
    }
    return;
  }
  // lookup3 / Salsa20 do not factor into premix + data mix; their wider
  // internal state already fills the pipeline, so walk chain-by-chain.
  for (std::size_t j = 0; j < chains; ++j) {
    std::uint32_t s = seeds[j];
    for (std::size_t t = 0; t < length; ++t) {
      s = (*this)(s, data[j * length + t]);
      out[j * length + t] = s;
    }
  }
}

}  // namespace spinal::hash
