#pragma once
// The hash abstraction of §3.2: h : {0,1}^ν × {0,1}^k -> {0,1}^ν with
// ν = 32, drawn from a salted family (the salt plays the role of the
// random index into the pairwise-independent family H), plus the
// hash-derived RNG of §7.1: RNG(s, t) = h(s, t).

#include <cstddef>
#include <cstdint>
#include <string>

namespace spinal::hash {

/// Which concrete function realises h (all three from §7.1).
enum class Kind {
  kOneAtATime,  ///< Jenkins one-at-a-time; the paper's default.
  kLookup3,     ///< Jenkins lookup3 hashword.
  kSalsa20,     ///< Bernstein Salsa20 core (cryptographic strength).
};

/// Human-readable name, for reports.
std::string kind_name(Kind kind);

/// Salted spine hash. Both ends of the link construct the same
/// SpineHash (same kind and salt); the salt may be standardised or
/// derived from a scrambler-style pseudo-random s0 (§3.2).
class SpineHash {
 public:
  explicit SpineHash(Kind kind = Kind::kOneAtATime, std::uint32_t salt = 0) noexcept
      : kind_(kind), salt_(salt) {}

  Kind kind() const noexcept { return kind_; }
  std::uint32_t salt() const noexcept { return salt_; }

  /// h(state, data): next spine value from the previous state and a
  /// k-bit message chunk (data holds the chunk in its low bits).
  std::uint32_t operator()(std::uint32_t state, std::uint32_t data) const noexcept;

  /// RNG(s, t): the t-th pseudo-random 32-bit word from spine value s.
  /// Realised as h(s, t) (§7.1), so symbols are randomly addressable —
  /// symbols lost to erased frames never need to be generated.
  std::uint32_t rng(std::uint32_t spine, std::uint32_t index) const noexcept {
    return (*this)(spine, index ^ 0x80000000u);  // domain-separate from h
  }

  /// Batched h over a lane array: out[i] = h(states[i], data) for all
  /// i < count. Bit-identical to looping operator(); the kind dispatch
  /// is hoisted out of the loop and the per-kind loops are written over
  /// contiguous arrays so the compiler can vectorise them.
  void hash_n(const std::uint32_t* states, std::size_t count, std::uint32_t data,
              std::uint32_t* out) const noexcept;

  /// Batched RNG: out[i] = rng(states[i], index) for all i < count.
  void rng_n(const std::uint32_t* states, std::size_t count, std::uint32_t index,
             std::uint32_t* out) const noexcept {
    hash_n(states, count, index ^ 0x80000000u, out);
  }

  /// All 2^k children of a whole leaf array in one sweep, child-major:
  /// out[i*fanout + v] = h(states[i], v) for v < fanout, i < count (a
  /// leaf's children are contiguous, which is also the bubble search's
  /// d=1 candidate order). For one-at-a-time the state pre-mix (which
  /// does not depend on the chunk value) is shared across the fanout,
  /// so a leaf's children cost fanout+1 word mixes instead of 2*fanout.
  void hash_children(const std::uint32_t* states, std::size_t count,
                     std::uint32_t fanout, std::uint32_t* out) const noexcept;

  /// True when h factors into a data-independent state pre-mix followed
  /// by a data mix (one-at-a-time does; lookup3 and Salsa20 do not).
  /// When it does, callers hashing the same states against many data
  /// words (the per-symbol RNG draws) can pay the pre-mix once:
  ///   premix_n(states, n, tmp);
  ///   for each data: hash_premixed_n(tmp, n, data, out);
  /// is bit-identical to hash_n(states, n, data, out) per data word.
  bool has_premix() const noexcept { return kind_ == Kind::kOneAtATime; }

  /// Pre-mixes a lane array (only valid when has_premix()).
  void premix_n(const std::uint32_t* states, std::size_t count,
                std::uint32_t* out) const noexcept;

  /// Finishes h for lanes pre-mixed by premix_n (only valid when
  /// has_premix()).
  void hash_premixed_n(const std::uint32_t* premixed, std::size_t count,
                       std::uint32_t data, std::uint32_t* out) const noexcept;

  /// RNG over pre-mixed lanes: the premix-shared form of rng_n.
  void rng_premixed_n(const std::uint32_t* premixed, std::size_t count,
                      std::uint32_t index, std::uint32_t* out) const noexcept {
    hash_premixed_n(premixed, count, index ^ 0x80000000u, out);
  }

  /// Walks @p chains independent spine chains in one interleaved sweep.
  /// For chain j < chains, with s_0 = seeds[j]:
  ///   s_{t+1} = h(s_t, data[j * length + t]),
  ///   out[j * length + t] = s_{t+1}      for t < length.
  /// Bit-identical to walking each chain with operator(). A single
  /// chain is latency-bound — every mix of h waits on the previous
  /// one — so for one-at-a-time the chains are software-pipelined in
  /// groups of four: each step issues all chains' state pre-mixes,
  /// then all data mixes (the premix/data split hash_children also
  /// exploits), and the independent dependency chains overlap in the
  /// pipeline instead of serialising.
  void spine_walk_n(const std::uint32_t* seeds, std::size_t chains,
                    const std::uint32_t* data, std::size_t length,
                    std::uint32_t* out) const noexcept;

 private:
  Kind kind_;
  std::uint32_t salt_;
};

}  // namespace spinal::hash
