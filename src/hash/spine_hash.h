#pragma once
// The hash abstraction of §3.2: h : {0,1}^ν × {0,1}^k -> {0,1}^ν with
// ν = 32, drawn from a salted family (the salt plays the role of the
// random index into the pairwise-independent family H), plus the
// hash-derived RNG of §7.1: RNG(s, t) = h(s, t).

#include <cstdint>
#include <string>

namespace spinal::hash {

/// Which concrete function realises h (all three from §7.1).
enum class Kind {
  kOneAtATime,  ///< Jenkins one-at-a-time; the paper's default.
  kLookup3,     ///< Jenkins lookup3 hashword.
  kSalsa20,     ///< Bernstein Salsa20 core (cryptographic strength).
};

/// Human-readable name, for reports.
std::string kind_name(Kind kind);

/// Salted spine hash. Both ends of the link construct the same
/// SpineHash (same kind and salt); the salt may be standardised or
/// derived from a scrambler-style pseudo-random s0 (§3.2).
class SpineHash {
 public:
  explicit SpineHash(Kind kind = Kind::kOneAtATime, std::uint32_t salt = 0) noexcept
      : kind_(kind), salt_(salt) {}

  Kind kind() const noexcept { return kind_; }
  std::uint32_t salt() const noexcept { return salt_; }

  /// h(state, data): next spine value from the previous state and a
  /// k-bit message chunk (data holds the chunk in its low bits).
  std::uint32_t operator()(std::uint32_t state, std::uint32_t data) const noexcept;

  /// RNG(s, t): the t-th pseudo-random 32-bit word from spine value s.
  /// Realised as h(s, t) (§7.1), so symbols are randomly addressable —
  /// symbols lost to erased frames never need to be generated.
  std::uint32_t rng(std::uint32_t spine, std::uint32_t index) const noexcept {
    return (*this)(spine, index ^ 0x80000000u);  // domain-separate from h
  }

 private:
  Kind kind_;
  std::uint32_t salt_;
};

}  // namespace spinal::hash
