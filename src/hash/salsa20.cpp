#include "hash/salsa20.h"

#include <bit>

namespace spinal::hash {
namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) noexcept {
  b ^= std::rotl(a + d, 7);
  c ^= std::rotl(b + a, 9);
  d ^= std::rotl(c + b, 13);
  a ^= std::rotl(d + c, 18);
}

}  // namespace

void salsa20_core(const std::uint32_t in[16], std::uint32_t out[16]) noexcept {
  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = in[i];

  for (int round = 0; round < 20; round += 2) {
    // Column round.
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[5], x[9], x[13], x[1]);
    quarter_round(x[10], x[14], x[2], x[6]);
    quarter_round(x[15], x[3], x[7], x[11]);
    // Row round.
    quarter_round(x[0], x[1], x[2], x[3]);
    quarter_round(x[5], x[6], x[7], x[4]);
    quarter_round(x[10], x[11], x[8], x[9]);
    quarter_round(x[15], x[12], x[13], x[14]);
  }
  for (int i = 0; i < 16; ++i) out[i] = x[i] + in[i];
}

std::uint32_t salsa20_pair(std::uint32_t state, std::uint32_t data,
                           std::uint32_t salt) noexcept {
  // "expand 32-byte k" sigma constants in the diagonal, as in Salsa20.
  const std::uint32_t in[16] = {
      0x61707865, state, data,  salt,
      0x3320646e, state ^ 0x9E3779B9, data ^ 0x7F4A7C15, salt ^ 0x85EBCA6B,
      0x79622d32, 0,     0,     0,
      0x6b206574, state + data, data + salt, salt + state};
  std::uint32_t out[16];
  salsa20_core(in, out);
  return out[0] ^ out[8];
}

}  // namespace spinal::hash
