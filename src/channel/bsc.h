#pragma once
// Binary symmetric channel: each bit is flipped independently with
// crossover probability p (the paper's BSC model, §1/§4.1).

#include <cstdint>
#include <span>

#include "util/prng.h"

namespace spinal::channel {

class BscChannel {
 public:
  /// @param p     crossover probability in [0, 0.5]
  /// @param seed  deterministic flip seed
  BscChannel(double p, std::uint64_t seed);

  double crossover() const noexcept { return p_; }

  /// Flips each bit of @p bits (0/1 bytes) in place with probability p.
  void apply(std::span<std::uint8_t> bits) noexcept;

  /// One bit through the channel.
  std::uint8_t transmit(std::uint8_t bit) noexcept;

 private:
  double p_;
  util::Xoshiro256 rng_;
};

}  // namespace spinal::channel
