#include "channel/awgn.h"

#include <cmath>

#include "util/math.h"

namespace spinal::channel {

AwgnChannel::AwgnChannel(double snr_db, std::uint64_t seed, double signal_power)
    : snr_db_(snr_db),
      snr_lin_(util::db_to_lin(snr_db)),
      sigma2_(signal_power / snr_lin_),
      sigma_per_dim_(std::sqrt(sigma2_ / 2.0)),
      rng_(seed) {}

void AwgnChannel::apply(std::span<std::complex<float>> x) noexcept {
  for (auto& v : x) v = transmit(v);
}

std::complex<float> AwgnChannel::transmit(std::complex<float> x) noexcept {
  const float ni = static_cast<float>(sigma_per_dim_ * rng_.next_gaussian());
  const float nq = static_cast<float>(sigma_per_dim_ * rng_.next_gaussian());
  return {x.real() + ni, x.imag() + nq};
}

}  // namespace spinal::channel
