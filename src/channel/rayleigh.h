#pragma once
// Rayleigh block-fading channel of §8.3: y = h x + n where n is complex
// Gaussian noise of power sigma^2 and h is a complex coefficient with
// uniform phase and Rayleigh magnitude (E|h|^2 = 1), redrawn every tau
// symbols (the coherence time).

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "util/prng.h"

namespace spinal::channel {

class RayleighChannel {
 public:
  /// @param snr_db        average SNR (E|h|^2 P / sigma^2) in dB
  /// @param coherence     tau, symbols between fading redraws (>=1)
  /// @param seed          deterministic seed
  /// @param signal_power  average transmit power P (default 1)
  RayleighChannel(double snr_db, int coherence, std::uint64_t seed,
                  double signal_power = 1.0);

  double snr_db() const noexcept { return snr_db_; }
  double noise_variance() const noexcept { return sigma2_; }
  int coherence() const noexcept { return tau_; }

  /// Fades+noises @p x in place and appends the per-symbol fading
  /// coefficients to @p csi_out (exact CSI for Fig 8-4's "decoders given
  /// exact fading channel parameters"). The fading process is continuous
  /// across calls: symbol index keeps counting.
  void apply(std::span<std::complex<float>> x,
             std::vector<std::complex<float>>& csi_out);

 private:
  double snr_db_;
  double sigma2_;
  double sigma_per_dim_;
  int tau_;
  util::Xoshiro256 rng_;
  std::int64_t symbol_count_ = 0;
  std::complex<float> h_{1.0f, 0.0f};
};

}  // namespace spinal::channel
