#include "channel/bsc.h"

#include <stdexcept>

namespace spinal::channel {

BscChannel::BscChannel(double p, std::uint64_t seed) : p_(p), rng_(seed) {
  if (p < 0.0 || p > 0.5)
    throw std::invalid_argument("BscChannel: crossover must be in [0, 0.5]");
}

void BscChannel::apply(std::span<std::uint8_t> bits) noexcept {
  for (auto& b : bits) b = transmit(b);
}

std::uint8_t BscChannel::transmit(std::uint8_t bit) noexcept {
  return (rng_.next_double() < p_) ? static_cast<std::uint8_t>(bit ^ 1u) : bit;
}

}  // namespace spinal::channel
