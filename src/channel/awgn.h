#pragma once
// Complex additive white Gaussian noise channel.
//
// Convention used throughout the repo: transmit symbols have average
// power P (default 1), the channel adds circularly-symmetric complex
// Gaussian noise of total variance sigma^2 = P / SNR (sigma^2/2 per
// real dimension), so SNR = P / sigma^2 exactly as in §8.1.

#include <complex>
#include <cstdint>
#include <span>

#include "util/prng.h"

namespace spinal::channel {

class AwgnChannel {
 public:
  /// @param snr_db        signal-to-noise ratio in dB
  /// @param seed          deterministic noise seed
  /// @param signal_power  average transmit power P (default 1)
  AwgnChannel(double snr_db, std::uint64_t seed, double signal_power = 1.0);

  double snr_db() const noexcept { return snr_db_; }
  double snr_linear() const noexcept { return snr_lin_; }
  /// Total complex noise variance sigma^2.
  double noise_variance() const noexcept { return sigma2_; }

  /// Adds noise to @p x in place.
  void apply(std::span<std::complex<float>> x) noexcept;

  /// Convenience: one noisy symbol.
  std::complex<float> transmit(std::complex<float> x) noexcept;

 private:
  double snr_db_;
  double snr_lin_;
  double sigma2_;
  double sigma_per_dim_;
  util::Xoshiro256 rng_;
};

}  // namespace spinal::channel
