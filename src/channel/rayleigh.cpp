#include "channel/rayleigh.h"

#include <cmath>
#include <stdexcept>

#include "util/math.h"

namespace spinal::channel {

RayleighChannel::RayleighChannel(double snr_db, int coherence, std::uint64_t seed,
                                 double signal_power)
    : snr_db_(snr_db),
      sigma2_(signal_power / util::db_to_lin(snr_db)),
      sigma_per_dim_(std::sqrt(sigma2_ / 2.0)),
      tau_(coherence),
      rng_(seed) {
  if (coherence < 1) throw std::invalid_argument("RayleighChannel: coherence must be >= 1");
}

void RayleighChannel::apply(std::span<std::complex<float>> x,
                            std::vector<std::complex<float>>& csi_out) {
  for (auto& v : x) {
    if (symbol_count_ % tau_ == 0) {
      // h = (g1 + j g2)/sqrt(2): uniform phase, Rayleigh magnitude,
      // E|h|^2 = 1.
      h_ = {static_cast<float>(rng_.next_gaussian() / std::sqrt(2.0)),
            static_cast<float>(rng_.next_gaussian() / std::sqrt(2.0))};
    }
    ++symbol_count_;
    csi_out.push_back(h_);
    const std::complex<float> faded = h_ * v;
    const float ni = static_cast<float>(sigma_per_dim_ * rng_.next_gaussian());
    const float nq = static_cast<float>(sigma_per_dim_ * rng_.next_gaussian());
    v = {faded.real() + ni, faded.imag() + nq};
  }
}

}  // namespace spinal::channel
