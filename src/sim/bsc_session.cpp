#include "sim/bsc_session.h"

namespace spinal::sim {

BscSession::BscSession(const CodeParams& params)
    : params_(params), schedule_(params), decoder_(params) {
  params_.validate();
}

void BscSession::start(const util::BitVec& message) {
  encoder_ = std::make_unique<BscSpinalEncoder>(params_, message);
  decoder_.reset();
  subpass_ = 0;
  chunk_ids_.clear();
}

std::vector<std::complex<float>> BscSession::next_chunk() {
  chunk_ids_ = schedule_.subpass(subpass_++);
  std::vector<std::complex<float>> out;
  out.reserve(chunk_ids_.size());
  for (const SymbolId& id : chunk_ids_)
    out.emplace_back(static_cast<float>(encoder_->bit(id)), 0.0f);
  return out;
}

void BscSession::receive_chunk(std::span<const std::complex<float>> y,
                               std::span<const std::complex<float>> /*csi*/) {
  for (std::size_t i = 0; i < y.size(); ++i)
    decoder_.add_bit(chunk_ids_[i], y[i].real() >= 0.5f ? 1 : 0);
}

std::optional<util::BitVec> BscSession::try_decode() {
  return decoder_.decode().message;
}

std::optional<util::BitVec> BscSession::try_decode_with(CodecWorkspace* ws,
                                                        int effort) {
  auto* sw = static_cast<SpinalWorkspace*>(ws);
  if (sw == nullptr) return try_decode();
  decoder_.decode_with(sw->ws, sw->out, effort);
  return sw->out.message;
}

void BscSession::try_decode_batch(CodecWorkspace* ws,
                                  std::span<BatchDecodeJob> jobs) {
  auto* sw = static_cast<SpinalWorkspace*>(ws);
  if (sw == nullptr || jobs.size() < 2) {
    RatelessSession::try_decode_batch(ws, jobs);
    return;
  }
  if (sw->batch_out.size() < jobs.size()) sw->batch_out.resize(jobs.size());
  std::vector<BscSpinalDecoder::BlockJob> blocks(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto* peer = static_cast<BscSession*>(jobs[i].session);
    blocks[i] = {&peer->decoder_, &sw->batch_out[i], jobs[i].effort};
  }
  BscSpinalDecoder::decode_batch_with(sw->ws, blocks);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    *jobs[i].candidate = sw->batch_out[i].message;
}

int BscSession::max_chunks() const {
  return params_.max_passes * schedule_.subpasses_per_pass();
}

}  // namespace spinal::sim
