#pragma once
// RatelessSession adapter for spinal codes over the binary symmetric
// channel (§3.3's trivial c=1 mapping, §4.1's Hamming metric): coded
// bits ride the real axis of the engine's complex-symbol interface
// (0.0 / 1.0) and ChannelSim::bsc() flips them. This puts the BSC
// construction behind the same execution engine — run_message,
// MessageRun, the experiment sweeps and the decode runtime — as the
// AWGN/fading sessions, with one chunk per puncturing subpass.

#include <algorithm>
#include <memory>

#include "sim/session.h"
#include "sim/spinal_workspace.h"
#include "spinal/decoder.h"
#include "spinal/encoder.h"
#include "spinal/schedule.h"

namespace spinal::sim {

class BscSession : public RatelessSession {
 public:
  explicit BscSession(const CodeParams& params);

  int message_bits() const override { return params_.n; }
  void start(const util::BitVec& message) override;
  std::vector<std::complex<float>> next_chunk() override;
  void receive_chunk(std::span<const std::complex<float>> y,
                     std::span<const std::complex<float>> csi) override;
  std::optional<util::BitVec> try_decode() override;
  /// Effort = beam width. A null @p ws falls back to try_decode().
  std::optional<util::BitVec> try_decode_with(CodecWorkspace* ws,
                                              int effort) override;
  /// Multi-session decode via BscSpinalDecoder::decode_batch_with (see
  /// SpinalSession::try_decode_batch).
  void try_decode_batch(CodecWorkspace* ws,
                        std::span<BatchDecodeJob> jobs) override;
  WorkspaceKey workspace_key() const override {
    return spinal_workspace_key(params_);
  }
  WorkspaceKey batch_key() const override {
    return spinal_batch_key(params_, "spinal.bsc");
  }
  std::unique_ptr<CodecWorkspace> make_workspace() const override {
    return std::make_unique<SpinalWorkspace>();
  }
  EffortProfile effort_profile() const override {
    return {params_.B, std::min(16, params_.B)};
  }
  int max_chunks() const override;

  const CodeParams& params() const noexcept { return params_; }

 private:
  CodeParams params_;
  PuncturingSchedule schedule_;
  std::unique_ptr<BscSpinalEncoder> encoder_;
  BscSpinalDecoder decoder_;

  int subpass_ = 0;
  std::vector<SymbolId> chunk_ids_;  // ids of the chunk in flight
};

}  // namespace spinal::sim
