#pragma once
// RatelessSession adapter for spinal codes: subpass-granular streaming
// with optional finer chunking (down to one symbol per chunk) so the
// engine can attempt decodes "after roughly every received symbol"
// (Fig 8-10/8-11's aggressive schedule).

#include <algorithm>
#include <memory>

#include "sim/session.h"
#include "sim/spinal_workspace.h"
#include "spinal/decoder.h"
#include "spinal/encoder.h"
#include "spinal/schedule.h"

namespace spinal::sim {

class SpinalSession : public RatelessSession {
 public:
  /// @param symbols_per_chunk 0 = one chunk per subpass (default);
  ///        otherwise chunks carry at most this many symbols.
  explicit SpinalSession(const CodeParams& params, int symbols_per_chunk = 0);

  int message_bits() const override { return params_.n; }
  void start(const util::BitVec& message) override;
  std::vector<std::complex<float>> next_chunk() override;
  void receive_chunk(std::span<const std::complex<float>> y,
                     std::span<const std::complex<float>> csi) override;
  std::optional<util::BitVec> try_decode() override;
  /// Effort = beam width. A null @p ws falls back to try_decode() (the
  /// decoder's internal workspace, configured width).
  std::optional<util::BitVec> try_decode_with(CodecWorkspace* ws,
                                              int effort) override;
  /// Level-synchronous multi-session decode via
  /// SpinalDecoder::decode_batch_with; bit-identical per job to the solo
  /// try_decode_with path.
  void try_decode_batch(CodecWorkspace* ws,
                        std::span<BatchDecodeJob> jobs) override;
  WorkspaceKey workspace_key() const override {
    return spinal_workspace_key(params_);
  }
  WorkspaceKey batch_key() const override {
    return spinal_batch_key(params_, "spinal.awgn");
  }
  std::unique_ptr<CodecWorkspace> make_workspace() const override {
    return std::make_unique<SpinalWorkspace>();
  }
  EffortProfile effort_profile() const override {
    return {params_.B, std::min(16, params_.B)};
  }
  int max_chunks() const override;

  const CodeParams& params() const noexcept { return params_; }

 private:
  CodeParams params_;
  int symbols_per_chunk_;
  PuncturingSchedule schedule_;
  std::unique_ptr<SpinalEncoder> encoder_;
  SpinalDecoder decoder_;

  int subpass_ = 0;
  std::vector<SymbolId> queue_;      // remaining ids of the current subpass
  std::size_t queue_pos_ = 0;
  std::vector<SymbolId> chunk_ids_;  // ids of the chunk in flight
};

}  // namespace spinal::sim
