#include "sim/trial_runner.h"

#include <algorithm>
#include <cstdlib>

namespace spinal::sim {

int bench_threads() {
  if (const char* env = std::getenv("SPINAL_BENCH_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

TrialRunner::TrialRunner(int threads) {
  if (threads <= 0) threads = bench_threads();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

TrialRunner::~TrialRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

TrialRunner& TrialRunner::shared() {
  static TrialRunner runner;
  return runner;
}

void TrialRunner::parallel_for(int count, const std::function<void(int)>& body,
                               int max_threads) {
  if (count <= 0) return;
  const int limit = max_threads > 0 ? std::min(max_threads, threads()) : threads();

  // Sequential fast path: no pool involvement, identical to a plain loop.
  if (limit <= 1 || count == 1 || workers_.empty()) {
    for (int t = 0; t < count; ++t) body(t);
    return;
  }

  // One job owns the pool at a time. A caller that finds it busy —
  // another thread mid-sweep, or a nested call from inside a body —
  // falls back to the inline loop instead of corrupting the shared job
  // state. (An atomic flag, not a mutex try_lock: the nested case is a
  // same-thread re-acquire, UB for std::mutex.)
  bool expected = false;
  if (!busy_.compare_exchange_strong(expected, true)) {
    for (int t = 0; t < count; ++t) body(t);
    return;
  }
  struct BusyGuard {
    std::atomic<bool>& flag;
    ~BusyGuard() { flag.store(false); }
  } busy_guard{busy_};

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_.body = &body;
    job_.count = count;
    job_.worker_limit = limit - 1;  // calling thread takes the remaining slot
    next_trial_ = 0;
    pending_trials_ = count;
    first_error_ = nullptr;
    job_.seq = ++job_seq_;
  }
  cv_work_.notify_all();

  consume(job_);

  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return pending_trials_ == 0; });
  job_.body = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void TrialRunner::consume(Job& job) {
  for (;;) {
    int t;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // The shared counters may already belong to a newer job: a worker
      // that handed out this job's last trial can linger here while the
      // caller returns and submits the next parallel_for. Comparing the
      // snapshot's sequence number keeps it from claiming that job's
      // indices (and calling this job's by-then-destroyed body).
      if (job_seq_ != job.seq || next_trial_ >= job.count) return;
      // After a failure, drain the remaining indices without running them
      // so the caller's wait terminates promptly.
      if (first_error_) {
        pending_trials_ -= job.count - next_trial_;
        next_trial_ = job.count;
        if (pending_trials_ == 0) cv_done_.notify_all();
        return;
      }
      t = next_trial_++;
    }
    try {
      (*job.body)(t);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (--pending_trials_ == 0) cv_done_.notify_all();
  }
}

void TrialRunner::worker_loop(int worker_index) {
  std::uint64_t seen_seq = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] { return stopping_ || job_seq_ != seen_seq; });
      if (stopping_) return;
      seen_seq = job_seq_;
      if (worker_index >= job_.worker_limit) continue;  // capped-thread job
      job = job_;
    }
    consume(job);
  }
}

}  // namespace spinal::sim
