#pragma once
// Multithreaded Monte-Carlo trial execution for the experiment sweeps.
//
// Every rate-vs-SNR point runs `trials` independent messages whose
// seeds are derived from the trial index alone, so the trials are
// embarrassingly parallel. TrialRunner is a persistent std::thread pool
// that hands out trial indices to workers; callers write each trial's
// outcome into a per-trial slot and reduce the slots sequentially
// afterwards, which keeps every result bit-identical to a 1-thread run
// at any thread count (floating-point accumulation order never
// changes).
//
// Thread count is controlled by the SPINAL_BENCH_THREADS environment
// variable and defaults to std::thread::hardware_concurrency().

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spinal::sim {

/// Worker count for the shared pool: SPINAL_BENCH_THREADS when set to a
/// positive integer, otherwise hardware_concurrency() (minimum 1).
/// Re-reads the environment on every call.
int bench_threads();

class TrialRunner {
 public:
  /// @param threads pool size; 0 means bench_threads().
  explicit TrialRunner(int threads = 0);
  ~TrialRunner();

  TrialRunner(const TrialRunner&) = delete;
  TrialRunner& operator=(const TrialRunner&) = delete;

  /// Total threads that can work on a job (workers + calling thread).
  int threads() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(t) for every t in [0, count), spread across at most
  /// @p max_threads threads (0 = the whole pool; 1 = inline on the
  /// calling thread, byte-for-byte the sequential loop). The calling
  /// thread always participates. Trials must be independent: body(t)
  /// may only write state owned by trial t. If any body throws, the
  /// first exception is rethrown here after all workers go idle;
  /// remaining unstarted trials are skipped.
  ///
  /// Safe to call from multiple threads (so measure_rate stays as
  /// thread-safe as its old sequential implementation): the pool runs
  /// one job at a time, and a caller that finds it busy — including a
  /// nested call from inside a body — simply runs its job inline on
  /// its own thread.
  void parallel_for(int count, const std::function<void(int)>& body,
                    int max_threads = 0);

  /// Process-wide pool sized from bench_threads() at first use. Bench
  /// binaries and the experiment sweeps share this instance.
  static TrialRunner& shared();

 private:
  struct Job {
    const std::function<void(int)>* body = nullptr;
    int count = 0;
    int worker_limit = 0;  ///< workers with index >= limit sit this job out
    std::uint64_t seq = 0;  ///< job_seq_ at submission; guards stale workers
  };

  void worker_loop(int worker_index);
  void consume(Job& job);

  std::vector<std::thread> workers_;

  std::atomic<bool> busy_{false};  ///< a submitter owns the pool
  std::mutex mutex_;
  std::condition_variable cv_work_;   ///< signals a new job / shutdown
  std::condition_variable cv_done_;   ///< signals all trials finished
  Job job_;
  std::uint64_t job_seq_ = 0;         ///< bumped once per parallel_for
  int next_trial_ = 0;                ///< next unclaimed trial index
  int pending_trials_ = 0;            ///< claimed-or-unclaimed, not yet finished
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace spinal::sim
