#include "sim/engine.h"

namespace spinal::sim {

RunResult run_message(RatelessSession& session, ChannelSim& channel,
                      const util::BitVec& message, const EngineOptions& opt) {
  session.start(message);
  session.set_noise_hint(channel.noise_variance());
  RunResult r;
  int nonempty = 0;
  int next_attempt = opt.attempt_every;

  const int limit = session.max_chunks();
  for (int chunk = 0; chunk < limit; ++chunk) {
    std::vector<std::complex<float>> x = session.next_chunk();
    ++r.chunks;
    if (x.empty()) continue;

    std::vector<std::complex<float>> csi;
    channel.transmit(x, csi);
    session.receive_chunk(x, csi);
    r.symbols += static_cast<long>(x.size());
    ++nonempty;

    if (nonempty < next_attempt) continue;
    next_attempt = std::max(nonempty + opt.attempt_every,
                            static_cast<int>(nonempty * opt.attempt_growth));
    ++r.attempts;
    if (auto decoded = session.try_decode(); decoded && *decoded == message) {
      r.success = true;
      return r;
    }
  }
  return r;
}

}  // namespace spinal::sim
