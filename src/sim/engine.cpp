#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace spinal::sim {

void EngineOptions::validate() const {
  if (attempt_every < 1)
    throw std::invalid_argument(
        "EngineOptions: attempt_every must be >= 1 (got " +
        std::to_string(attempt_every) + "); smaller values stall the attempt schedule");
  if (attempt_growth < 1.0)
    throw std::invalid_argument(
        "EngineOptions: attempt_growth must be >= 1.0 (got " +
        std::to_string(attempt_growth) + "); smaller values shrink the attempt schedule");
}

MessageRun::MessageRun(RatelessSession& session, ChannelSim& channel,
                       const util::BitVec& message, const EngineOptions& opt)
    : session_(&session),
      channel_(&channel),
      message_(&message),
      opt_(opt),
      limit_(session.max_chunks()),
      next_attempt_(opt.attempt_every) {
  opt_.validate();
  session_->start(message);
  session_->set_noise_hint(channel_->noise_variance());
}

bool MessageRun::feed_to_attempt() {
  if (done_) return false;
  while (chunk_ < limit_) {
    ++chunk_;
    std::vector<std::complex<float>> x = session_->next_chunk();
    ++result_.chunks;
    if (x.empty()) continue;

    csi_.clear();
    channel_->transmit(x, csi_);
    session_->receive_chunk(x, csi_);
    result_.symbols += static_cast<long>(x.size());
    ++nonempty_;

    if (nonempty_ < next_attempt_) continue;
    next_attempt_ = std::max(nonempty_ + opt_.attempt_every,
                             static_cast<int>(nonempty_ * opt_.attempt_growth));
    ++result_.attempts;
    return true;
  }
  done_ = true;
  return false;
}

void MessageRun::record_attempt(const std::optional<util::BitVec>& candidate) {
  if (done_) return;
  if (candidate && *candidate == *message_) {
    result_.success = true;
    done_ = true;
  }
}

RunResult run_message(RatelessSession& session, ChannelSim& channel,
                      const util::BitVec& message, const EngineOptions& opt) {
  MessageRun run(session, channel, message, opt);
  while (run.feed_to_attempt()) run.record_attempt(session.try_decode());
  return run.result();
}

}  // namespace spinal::sim
