#pragma once
// Experiment sweeps shared by the benchmark binaries: rate-vs-SNR
// measurement for any rateless session, fixed-rate (rated) operation
// for the hedging study, and environment-based trial scaling so the
// same binaries serve quick CI runs and full paper-fidelity runs.

#include <functional>
#include <memory>

#include "sim/channel_sim.h"
#include "sim/engine.h"
#include "sim/session.h"
#include "spinal/params.h"
#include "util/stats.h"

namespace spinal::sim {

using SessionFactory = std::function<std::unique_ptr<RatelessSession>()>;

struct SweepOptions {
  int trials = 4;                            ///< messages per SNR point
  std::uint64_t seed = 1;                    ///< base seed (trial t adds t)
  int attempt_every = 1;                     ///< chunks between decode attempts
  double attempt_growth = 1.0;               ///< geometric attempt back-off
  ChannelKind channel = ChannelKind::kAwgn;  ///< channel model
  int coherence = 1;                         ///< fading tau (symbols)
  /// Trial-level parallelism cap: 0 = the shared TrialRunner pool
  /// (SPINAL_BENCH_THREADS, default hardware_concurrency), 1 = run
  /// sequentially on the calling thread. Results are bit-identical at
  /// every setting; see trial_runner.h.
  int threads = 0;
};

struct RateMeasurement {
  double snr_db = 0;
  double rate = 0;          ///< goodput: decoded bits / transmitted symbols
  double gap_db = 0;        ///< gap to capacity per §8.1
  double success_rate = 0;  ///< fraction of messages decoded before give-up
  double avg_symbols = 0;   ///< mean symbols per *successful* decode
  util::SampleSet symbols_to_decode;  ///< per-success symbol counts (Fig 8-11)
};

/// Streams @p opt.trials random messages through fresh sessions at one
/// SNR and aggregates rate = sum(decoded bits) / sum(symbols sent).
/// Trials run in parallel on the shared TrialRunner pool (each one is
/// seeded from its index alone) and are reduced in trial order, so the
/// measurement is bit-identical at any thread count. The factory must
/// be safe to invoke concurrently.
RateMeasurement measure_rate(const SessionFactory& make_session, double snr_db,
                             const SweepOptions& opt);

/// Throughput of a *rated* spinal code that always transmits exactly
/// @p symbols symbols (the schedule prefix) and decodes once:
/// (n/symbols) * P(success), the ARQ goodput of a fixed-rate code
/// (Fig 8-2's "Spinal, fixed rate" curves).
double fixed_rate_throughput(const CodeParams& params, int symbols, double snr_db,
                             int trials, std::uint64_t seed);

/// Trial scaling for benches: returns @p base, overridden by the
/// SPINAL_BENCH_TRIALS environment variable, multiplied by 8 when
/// SPINAL_BENCH_FULL=1.
int scaled_trials(int base);

}  // namespace spinal::sim
