#include "sim/experiment.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "channel/awgn.h"
#include "sim/trial_runner.h"
#include "spinal/decoder.h"
#include "spinal/encoder.h"
#include "util/math.h"
#include "util/prng.h"

namespace spinal::sim {

RateMeasurement measure_rate(const SessionFactory& make_session, double snr_db,
                             const SweepOptions& opt) {
  RateMeasurement m;
  m.snr_db = snr_db;

  // Phase 1: run the trials, each into its own slot. Every trial's
  // randomness derives from its index, so execution order is free.
  struct TrialOutcome {
    long symbols = 0;
    int bits = 0;
    bool success = false;
  };
  std::vector<TrialOutcome> outcomes(static_cast<std::size_t>(opt.trials));

  TrialRunner::shared().parallel_for(
      opt.trials,
      [&](int t) {
        const std::uint64_t seed = opt.seed + 0x1000003 * static_cast<std::uint64_t>(t);
        auto session = make_session();
        util::Xoshiro256 prng(seed ^ 0xC0FFEE);
        const util::BitVec message = prng.random_bits(session->message_bits());

        ChannelSim channel(opt.channel, snr_db, opt.coherence, seed);
        EngineOptions eopt;
        eopt.attempt_every = opt.attempt_every;
        eopt.attempt_growth = opt.attempt_growth;
        const RunResult r = run_message(*session, channel, message, eopt);

        TrialOutcome& out = outcomes[static_cast<std::size_t>(t)];
        out.symbols = r.symbols;
        out.success = r.success;
        if (r.success) out.bits = session->message_bits();
      },
      opt.threads);

  // Phase 2: reduce in trial order — the same accumulation sequence as
  // a sequential loop, hence bit-identical results.
  long total_symbols = 0;
  long decoded_bits = 0;
  int successes = 0;
  double success_symbols = 0;
  for (const TrialOutcome& out : outcomes) {
    total_symbols += out.symbols;
    if (out.success) {
      ++successes;
      decoded_bits += out.bits;
      success_symbols += static_cast<double>(out.symbols);
      m.symbols_to_decode.add(static_cast<double>(out.symbols));
    }
  }

  m.rate = total_symbols > 0 ? static_cast<double>(decoded_bits) / total_symbols : 0.0;
  m.gap_db = util::gap_to_capacity_db(m.rate, snr_db);
  m.success_rate = static_cast<double>(successes) / opt.trials;
  m.avg_symbols = successes > 0 ? success_symbols / successes : 0.0;
  return m;
}

double fixed_rate_throughput(const CodeParams& params, int symbols, double snr_db,
                             int trials, std::uint64_t seed) {
  const PuncturingSchedule schedule(params);
  const std::vector<SymbolId> ids = schedule.prefix(symbols);
  std::vector<std::uint8_t> decoded(static_cast<std::size_t>(trials), 0);

  TrialRunner::shared().parallel_for(trials, [&](int t) {
    const std::uint64_t s = seed + 0x9E3779B9 * static_cast<std::uint64_t>(t);
    util::Xoshiro256 prng(s ^ 0xFACade);
    const util::BitVec message = prng.random_bits(params.n);

    SpinalEncoder encoder(params, message);
    SpinalDecoder decoder(params);
    channel::AwgnChannel channel(snr_db, s);

    for (const SymbolId& id : ids)
      decoder.add_symbol(id, channel.transmit(encoder.symbol(id)));

    decoded[static_cast<std::size_t>(t)] = decoder.decode().message == message;
  });

  int successes = 0;
  for (const std::uint8_t ok : decoded) successes += ok;
  return (static_cast<double>(params.n) / symbols) *
         (static_cast<double>(successes) / trials);
}

int scaled_trials(int base) {
  int trials = base;
  if (const char* env = std::getenv("SPINAL_BENCH_TRIALS")) {
    const int v = std::atoi(env);
    if (v > 0) trials = v;
  }
  if (const char* full = std::getenv("SPINAL_BENCH_FULL")) {
    if (std::string(full) == "1") trials *= 8;
  }
  return trials;
}

}  // namespace spinal::sim
