#include "sim/experiment.h"

#include <cstdlib>
#include <string>

#include "channel/awgn.h"
#include "spinal/decoder.h"
#include "spinal/encoder.h"
#include "util/math.h"
#include "util/prng.h"

namespace spinal::sim {

RateMeasurement measure_rate(const SessionFactory& make_session, double snr_db,
                             const SweepOptions& opt) {
  RateMeasurement m;
  m.snr_db = snr_db;

  long total_symbols = 0;
  long decoded_bits = 0;
  int successes = 0;
  double success_symbols = 0;

  for (int t = 0; t < opt.trials; ++t) {
    const std::uint64_t seed = opt.seed + 0x1000003 * static_cast<std::uint64_t>(t);
    auto session = make_session();
    util::Xoshiro256 prng(seed ^ 0xC0FFEE);
    const util::BitVec message = prng.random_bits(session->message_bits());

    ChannelSim channel(opt.channel, snr_db, opt.coherence, seed);
    EngineOptions eopt;
    eopt.attempt_every = opt.attempt_every;
    eopt.attempt_growth = opt.attempt_growth;
    const RunResult r = run_message(*session, channel, message, eopt);

    total_symbols += r.symbols;
    if (r.success) {
      ++successes;
      decoded_bits += session->message_bits();
      success_symbols += static_cast<double>(r.symbols);
      m.symbols_to_decode.add(static_cast<double>(r.symbols));
    }
  }

  m.rate = total_symbols > 0 ? static_cast<double>(decoded_bits) / total_symbols : 0.0;
  m.gap_db = util::gap_to_capacity_db(m.rate, snr_db);
  m.success_rate = static_cast<double>(successes) / opt.trials;
  m.avg_symbols = successes > 0 ? success_symbols / successes : 0.0;
  return m;
}

double fixed_rate_throughput(const CodeParams& params, int symbols, double snr_db,
                             int trials, std::uint64_t seed) {
  const PuncturingSchedule schedule(params);
  const std::vector<SymbolId> ids = schedule.prefix(symbols);
  int successes = 0;

  for (int t = 0; t < trials; ++t) {
    const std::uint64_t s = seed + 0x9E3779B9 * static_cast<std::uint64_t>(t);
    util::Xoshiro256 prng(s ^ 0xFACade);
    const util::BitVec message = prng.random_bits(params.n);

    SpinalEncoder encoder(params, message);
    SpinalDecoder decoder(params);
    channel::AwgnChannel channel(snr_db, s);

    for (const SymbolId& id : ids)
      decoder.add_symbol(id, channel.transmit(encoder.symbol(id)));

    if (decoder.decode().message == message) ++successes;
  }
  return (static_cast<double>(params.n) / symbols) *
         (static_cast<double>(successes) / trials);
}

int scaled_trials(int base) {
  int trials = base;
  if (const char* env = std::getenv("SPINAL_BENCH_TRIALS")) {
    const int v = std::atoi(env);
    if (v > 0) trials = v;
  }
  if (const char* full = std::getenv("SPINAL_BENCH_FULL")) {
    if (std::string(full) == "1") trials *= 8;
  }
  return trials;
}

}  // namespace spinal::sim
