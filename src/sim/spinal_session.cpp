#include "sim/spinal_session.h"

namespace spinal::sim {

SpinalSession::SpinalSession(const CodeParams& params, int symbols_per_chunk)
    : params_(params),
      symbols_per_chunk_(symbols_per_chunk),
      schedule_(params),
      decoder_(params) {
  params_.validate();
}

void SpinalSession::start(const util::BitVec& message) {
  encoder_ = std::make_unique<SpinalEncoder>(params_, message);
  decoder_.reset();
  subpass_ = 0;
  queue_.clear();
  queue_pos_ = 0;
  chunk_ids_.clear();
}

std::vector<std::complex<float>> SpinalSession::next_chunk() {
  if (queue_pos_ >= queue_.size()) {
    queue_ = schedule_.subpass(subpass_++);
    queue_pos_ = 0;
  }
  chunk_ids_.clear();
  std::vector<std::complex<float>> out;
  const std::size_t take =
      symbols_per_chunk_ > 0
          ? std::min<std::size_t>(symbols_per_chunk_, queue_.size() - queue_pos_)
          : queue_.size() - queue_pos_;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    const SymbolId id = queue_[queue_pos_++];
    chunk_ids_.push_back(id);
    out.push_back(encoder_->symbol(id));
  }
  return out;
}

void SpinalSession::receive_chunk(std::span<const std::complex<float>> y,
                                  std::span<const std::complex<float>> csi) {
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (csi.empty())
      decoder_.add_symbol(chunk_ids_[i], y[i]);
    else
      decoder_.add_symbol(chunk_ids_[i], y[i], csi[i]);
  }
}

std::optional<util::BitVec> SpinalSession::try_decode() {
  return decoder_.decode().message;
}

std::optional<util::BitVec> SpinalSession::try_decode_with(CodecWorkspace* ws,
                                                           int effort) {
  auto* sw = static_cast<SpinalWorkspace*>(ws);
  if (sw == nullptr) return try_decode();
  decoder_.decode_with(sw->ws, sw->out, effort);
  return sw->out.message;
}

void SpinalSession::try_decode_batch(CodecWorkspace* ws,
                                     std::span<BatchDecodeJob> jobs) {
  auto* sw = static_cast<SpinalWorkspace*>(ws);
  if (sw == nullptr || jobs.size() < 2) {
    RatelessSession::try_decode_batch(ws, jobs);
    return;
  }
  if (sw->batch_out.size() < jobs.size()) sw->batch_out.resize(jobs.size());
  std::vector<SpinalDecoder::BlockJob> blocks(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Equal batch keys guarantee every job's session is a SpinalSession
    // (the same contract try_decode_with's workspace downcast rests on).
    auto* peer = static_cast<SpinalSession*>(jobs[i].session);
    blocks[i] = {&peer->decoder_, &sw->batch_out[i], jobs[i].effort};
  }
  SpinalDecoder::decode_batch_with(sw->ws, blocks);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    *jobs[i].candidate = sw->batch_out[i].message;
}

int SpinalSession::max_chunks() const {
  const int subpasses = params_.max_passes * schedule_.subpasses_per_pass();
  if (symbols_per_chunk_ <= 0) return subpasses;
  const int per_subpass =
      (schedule_.symbols_per_pass() / schedule_.subpasses_per_pass()) /
          symbols_per_chunk_ +
      2;
  return subpasses * per_subpass;
}

}  // namespace spinal::sim
