#include "sim/channel_sim.h"

#include <stdexcept>

namespace spinal::sim {

ChannelSim::ChannelSim(ChannelKind kind, double snr_db, int coherence,
                       std::uint64_t seed)
    : kind_(kind), snr_db_(snr_db) {
  if (kind == ChannelKind::kAwgn) {
    awgn_ = std::make_unique<channel::AwgnChannel>(snr_db, seed);
  } else if (kind == ChannelKind::kBsc) {
    throw std::invalid_argument(
        "ChannelSim: kBsc takes a crossover probability, not an SNR — "
        "construct it with ChannelSim::bsc(crossover, seed)");
  } else {
    rayleigh_ = std::make_unique<channel::RayleighChannel>(snr_db, coherence, seed);
  }
}

ChannelSim ChannelSim::bsc(double crossover, std::uint64_t seed) {
  ChannelSim sim;
  sim.kind_ = ChannelKind::kBsc;
  sim.bsc_ = std::make_unique<channel::BscChannel>(crossover, seed);
  return sim;
}

double ChannelSim::noise_variance() const noexcept {
  if (bsc_) return bsc_->crossover();
  return awgn_ ? awgn_->noise_variance() : rayleigh_->noise_variance();
}

void ChannelSim::transmit(std::span<std::complex<float>> x,
                          std::vector<std::complex<float>>& csi_out) {
  switch (kind_) {
    case ChannelKind::kAwgn:
      awgn_->apply(x);
      break;
    case ChannelKind::kRayleighCsi:
      rayleigh_->apply(x, csi_out);
      break;
    case ChannelKind::kRayleighNoCsi: {
      scratch_csi_.clear();
      rayleigh_->apply(x, scratch_csi_);
      // Hand back only the phase: the decoder stays carrier-coherent
      // but must treat the amplitude as if the channel were AWGN.
      for (const auto& h : scratch_csi_) {
        const float mag = std::abs(h);
        csi_out.push_back(mag > 1e-9f ? h / mag : std::complex<float>{1.0f, 0.0f});
      }
      break;
    }
    case ChannelKind::kBsc:
      for (auto& v : x) {
        const std::uint8_t bit = v.real() >= 0.5f ? 1 : 0;
        v = {static_cast<float>(bsc_->transmit(bit)), 0.0f};
      }
      break;
  }
}

}  // namespace spinal::sim
