#include "sim/channel_sim.h"

namespace spinal::sim {

ChannelSim::ChannelSim(ChannelKind kind, double snr_db, int coherence,
                       std::uint64_t seed)
    : kind_(kind), snr_db_(snr_db) {
  if (kind == ChannelKind::kAwgn) {
    awgn_ = std::make_unique<channel::AwgnChannel>(snr_db, seed);
  } else {
    rayleigh_ = std::make_unique<channel::RayleighChannel>(snr_db, coherence, seed);
  }
}

double ChannelSim::noise_variance() const noexcept {
  return awgn_ ? awgn_->noise_variance() : rayleigh_->noise_variance();
}

void ChannelSim::transmit(std::span<std::complex<float>> x,
                          std::vector<std::complex<float>>& csi_out) {
  switch (kind_) {
    case ChannelKind::kAwgn:
      awgn_->apply(x);
      break;
    case ChannelKind::kRayleighCsi:
      rayleigh_->apply(x, csi_out);
      break;
    case ChannelKind::kRayleighNoCsi: {
      scratch_csi_.clear();
      rayleigh_->apply(x, scratch_csi_);
      // Hand back only the phase: the decoder stays carrier-coherent
      // but must treat the amplitude as if the channel were AWGN.
      for (const auto& h : scratch_csi_) {
        const float mag = std::abs(h);
        csi_out.push_back(mag > 1e-9f ? h / mag : std::complex<float>{1.0f, 0.0f});
      }
      break;
    }
  }
}

}  // namespace spinal::sim
