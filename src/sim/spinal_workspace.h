#pragma once
// The concrete CodecWorkspace of every spinal-decoder-backed session
// (AWGN/fading SpinalSession, BscSession, and the link-layer mux's raw
// block decodes): the beam-search DecodeWorkspace plus a DecodeResult
// scratch, pinned together per worker so steady-state attempts stay
// allocation-free. All spinal sessions key their workspaces under
// codec "spinal" with every CodeParams field serialized into the params
// string — equal keys guarantee interchangeable workspace layouts.

#include <string>

#include "sim/session.h"
#include "spinal/cost_model.h"
#include "spinal/decoder.h"
#include "spinal/params.h"

namespace spinal::sim {

struct SpinalWorkspace final : CodecWorkspace {
  detail::DecodeWorkspace ws;
  DecodeResult out;
  /// Per-block result slots of batched decodes (try_decode_batch);
  /// sized to the batch, reused across batches.
  std::vector<DecodeResult> batch_out;
};

/// The WorkspaceKey all spinal sessions (and the mux) pin under.
inline WorkspaceKey spinal_workspace_key(const CodeParams& p) {
  std::string s;
  s.reserve(128);
  const auto add_i = [&s](long long v) {
    s += std::to_string(v);
    s += ';';
  };
  const auto add_d = [&s](double v) {
    s += std::to_string(v);
    s += ';';
  };
  add_i(p.n);
  add_i(p.k);
  add_i(p.c);
  add_i(p.B);
  add_i(p.d);
  add_i(p.tail_symbols);
  add_i(p.puncture_ways);
  add_i(static_cast<int>(p.map));
  add_i(static_cast<int>(p.hash_kind));
  add_d(p.beta);
  add_d(p.power);
  add_i(p.salt);
  add_i(p.s0);
  add_i(p.max_passes);
  add_i(p.fixed_point_frac_bits);
  // Narrow-metric decodes size quantized search buffers the f32 path
  // never touches — distinct precisions must not share a workspace.
  add_i(static_cast<int>(resolve_cost_precision(p.cost_precision)));
  return WorkspaceKey{"spinal", std::move(s)};
}

/// Batch-aggregation key of a spinal session: the workspace key refined
/// by channel flavor ("spinal.awgn" / "spinal.bsc"). AWGN and BSC
/// sessions deliberately share spinal_workspace_key so a worker pins one
/// scratch for both, but their BlockJob types differ — batches must not
/// mix them.
inline WorkspaceKey spinal_batch_key(const CodeParams& p, const char* flavor) {
  WorkspaceKey key = spinal_workspace_key(p);
  key.codec = flavor;
  return key;
}

}  // namespace spinal::sim
