#pragma once
// Channel front-end for the execution engine: wraps the AWGN and
// Rayleigh models behind one transmit() call and controls whether the
// receiver is given channel-state information (Fig 8-4 vs Fig 8-5).

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "channel/awgn.h"
#include "channel/bsc.h"
#include "channel/rayleigh.h"

namespace spinal::sim {

enum class ChannelKind {
  kAwgn,         ///< y = x + n
  kRayleighCsi,  ///< y = h x + n, exact h handed to the decoder
  /// y = h x + n; the decoder gets only a unit-magnitude phase
  /// reference h/|h| (carrier sync is standard receiver functionality)
  /// but no amplitude/quality estimate — Fig 8-5's "no detailed or
  /// accurate fading information" robustness regime.
  kRayleighNoCsi,
  /// Binary symmetric channel (§4.1): symbols carry one coded bit on
  /// the real axis (0.0 or 1.0) and each is flipped independently with
  /// the crossover probability. Built via ChannelSim::bsc().
  kBsc,
};

class ChannelSim {
 public:
  /// @param coherence fading coherence time tau in symbols (ignored for AWGN)
  /// Throws std::invalid_argument for kBsc — use bsc() instead (the BSC
  /// is parameterised by a crossover probability, not an SNR).
  ChannelSim(ChannelKind kind, double snr_db, int coherence, std::uint64_t seed);

  /// BSC front-end: transmit() treats each symbol as one coded bit on
  /// the real axis (>= 0.5 reads as 1) and flips it with probability
  /// @p crossover. Pairs with BscSession (sim/bsc_session.h).
  static ChannelSim bsc(double crossover, std::uint64_t seed);

  ChannelKind kind() const noexcept { return kind_; }
  double snr_db() const noexcept { return snr_db_; }

  /// Total complex noise variance sigma^2 (AWGN/Rayleigh); for kBsc the
  /// crossover probability (the analogous receiver-quality hint — the
  /// spinal decoder ignores it either way).
  double noise_variance() const noexcept;

  /// Applies the channel to @p x in place. For kRayleighCsi the
  /// per-symbol coefficients are appended to @p csi_out; otherwise
  /// @p csi_out is left untouched (empty CSI = treat as AWGN).
  void transmit(std::span<std::complex<float>> x,
                std::vector<std::complex<float>>& csi_out);

 private:
  ChannelSim() = default;  // bsc() factory

  ChannelKind kind_ = ChannelKind::kAwgn;
  double snr_db_ = 0.0;
  std::unique_ptr<channel::AwgnChannel> awgn_;
  std::unique_ptr<channel::RayleighChannel> rayleigh_;
  std::unique_ptr<channel::BscChannel> bsc_;
  std::vector<std::complex<float>> scratch_csi_;
};

}  // namespace spinal::sim
