#pragma once
// The common rateless-session interface every code implements so that a
// single execution engine can stream symbols from encoder through the
// channel to the decoder and collect identical statistics for all codes
// (§8.1: "All codes run through the same engine", with "no sharing of
// information between the transmitter and receiver components").
//
// The decode runtime drives sessions through the same interface, so the
// codec-facing seam is deliberately type-erased: a session may expose a
// reusable decode workspace (CodecWorkspace + WorkspaceKey, pinned per
// worker by the runtime) and a generic integer "effort" knob — beam
// width for spinal, BP iteration cap for LDPC/Raptor, turbo iteration
// budget for Turbo/Strider — that the load-adaptive policy trades for
// compute under overload (the Fig 8-6 knob, generalized).

#include <complex>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bitvec.h"

namespace spinal::sim {

/// Type-erased per-worker decode scratch. Concrete sessions downcast to
/// their own derived type; the contract is that two sessions reporting
/// equal WorkspaceKeys produce (and accept) the same concrete type, so a
/// runtime worker can pin one workspace per key and share it across all
/// sessions of that codec/parameter combination.
class CodecWorkspace {
 public:
  virtual ~CodecWorkspace() = default;
};

/// Codec-tagged key under which the runtime pins workspaces. `codec`
/// names the family ("spinal", "ldpc", ...); `params` serializes every
/// parameter the workspace layout depends on, so distinct parameter
/// sets (heterogeneous links) never share scratch. A default-constructed
/// (invalid) key means the session has no pinnable workspace — its
/// decode attempts run unpinned, which the runtime's telemetry counts.
struct WorkspaceKey {
  std::string codec;
  std::string params;

  bool valid() const noexcept { return !codec.empty(); }
  auto operator<=>(const WorkspaceKey&) const = default;
};

/// The session's compute/accuracy knob: `full` is the configured effort
/// (spinal beam width B, LDPC/Raptor BP iterations, turbo iterations),
/// `floor` the lowest value at which an attempt is still worth running.
/// full == 0 means the session has no knob and every attempt runs at
/// the configured setting.
struct EffortProfile {
  int full = 0;
  int floor = 1;
};

class RatelessSession;

/// One session's slot in a cross-session batched decode attempt
/// (try_decode_batch): the session to decode, the effort to run it at
/// (same semantics as try_decode_with) and where to write its candidate.
struct BatchDecodeJob {
  RatelessSession* session = nullptr;
  int effort = 0;
  std::optional<util::BitVec>* candidate = nullptr;
};

class RatelessSession {
 public:
  virtual ~RatelessSession() = default;

  /// Message length in bits this session encodes per run.
  virtual int message_bits() const = 0;

  /// Begins transmission of @p message (message_bits() bits).
  virtual void start(const util::BitVec& message) = 0;

  /// Produces the next chunk of modulated symbols in transmission order.
  /// Chunk boundaries are the decode-attempt opportunities. An empty
  /// chunk means "this scheduling slot carries nothing" (possible with
  /// short spines and deep puncturing) — the engine skips it.
  virtual std::vector<std::complex<float>> next_chunk() = 0;

  /// Delivers the channel output for the chunk produced by the last
  /// next_chunk() call. @p csi is either empty (decoder must treat the
  /// channel as AWGN) or per-symbol fading coefficients.
  virtual void receive_chunk(std::span<const std::complex<float>> y,
                             std::span<const std::complex<float>> csi) = 0;

  /// Runs one decode attempt; returns a candidate message if the decoder
  /// produced one (the engine validates it against the transmitted
  /// message, playing the role of the link-layer CRC).
  virtual std::optional<util::BitVec> try_decode() = 0;

  /// Runtime-worker form of try_decode(): runs the attempt with
  /// caller-owned pinned scratch @p ws — a workspace built by
  /// make_workspace() of any session with an equal workspace_key(), or
  /// nullptr when none is pinned — at @p effort (<= 0: the configured
  /// full effort). With effort <= 0 the candidate is bit-identical to
  /// try_decode() regardless of @p ws, which is what deterministic-mode
  /// runtime/sequential equivalence rests on. The default ignores both
  /// and delegates, for sessions with neither a pinnable workspace nor
  /// an effort knob.
  virtual std::optional<util::BitVec> try_decode_with(CodecWorkspace* /*ws*/,
                                                      int /*effort*/) {
    return try_decode();
  }

  /// Runs one decode attempt for every job in @p jobs in a single
  /// batched pass over @p ws. The runtime only forms batches whose
  /// sessions all report this session's (equal, valid) batch_key(), and
  /// always dispatches on jobs.front().session; each job's candidate
  /// must be bit-identical to the same-effort try_decode_with call run
  /// alone. The default runs the jobs sequentially, so codecs without a
  /// multi-block decode entry point get batching as a no-op.
  virtual void try_decode_batch(CodecWorkspace* ws,
                                std::span<BatchDecodeJob> jobs) {
    for (BatchDecodeJob& j : jobs)
      *j.candidate = j.session->try_decode_with(ws, j.effort);
  }

  /// The key under which the runtime aggregates this session's decode
  /// jobs into batched attempts (try_decode_batch). Must be at least as
  /// fine as workspace_key() — sessions with equal batch keys must be
  /// safely batchable together, which can require distinguishing codecs
  /// that deliberately share workspace layouts. Invalid (default) key:
  /// this session's jobs are never batched.
  virtual WorkspaceKey batch_key() const { return {}; }

  /// The key under which the runtime pins this session's workspace; an
  /// invalid (default) key means attempts run unpinned.
  virtual WorkspaceKey workspace_key() const { return {}; }

  /// Builds a fresh workspace matching workspace_key(); nullptr when
  /// the session has none.
  virtual std::unique_ptr<CodecWorkspace> make_workspace() const {
    return nullptr;
  }

  /// The effort knob this session's decoder exposes (full == 0: none).
  virtual EffortProfile effort_profile() const { return {}; }

  /// Upper bound on chunks before the sender gives up on the message.
  virtual int max_chunks() const = 0;

  /// Receiver-side channel knowledge: the engine announces the noise
  /// variance once per run (real receivers estimate this from preambles;
  /// soft demappers need it, the spinal decoder does not).
  virtual void set_noise_hint(double /*noise_variance*/) {}
};

}  // namespace spinal::sim
