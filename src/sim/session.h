#pragma once
// The common rateless-session interface every code implements so that a
// single execution engine can stream symbols from encoder through the
// channel to the decoder and collect identical statistics for all codes
// (§8.1: "All codes run through the same engine", with "no sharing of
// information between the transmitter and receiver components").

#include <complex>
#include <optional>
#include <span>
#include <vector>

#include "util/bitvec.h"

namespace spinal {
struct CodeParams;
namespace detail {
struct DecodeWorkspace;
}
}  // namespace spinal

namespace spinal::sim {

class RatelessSession {
 public:
  virtual ~RatelessSession() = default;

  /// Message length in bits this session encodes per run.
  virtual int message_bits() const = 0;

  /// Begins transmission of @p message (message_bits() bits).
  virtual void start(const util::BitVec& message) = 0;

  /// Produces the next chunk of modulated symbols in transmission order.
  /// Chunk boundaries are the decode-attempt opportunities. An empty
  /// chunk means "this scheduling slot carries nothing" (possible with
  /// short spines and deep puncturing) — the engine skips it.
  virtual std::vector<std::complex<float>> next_chunk() = 0;

  /// Delivers the channel output for the chunk produced by the last
  /// next_chunk() call. @p csi is either empty (decoder must treat the
  /// channel as AWGN) or per-symbol fading coefficients.
  virtual void receive_chunk(std::span<const std::complex<float>> y,
                             std::span<const std::complex<float>> csi) = 0;

  /// Runs one decode attempt; returns a candidate message if the decoder
  /// produced one (the engine validates it against the transmitted
  /// message, playing the role of the link-layer CRC).
  virtual std::optional<util::BitVec> try_decode() = 0;

  /// Runtime-worker form of try_decode(): runs the attempt in
  /// caller-owned scratch @p ws — so a decode service can pin one
  /// workspace per CodeParams and share it across sessions — optionally
  /// with a narrower beam (@p beam_width <= 0: the configured width; see
  /// SpinalDecoder::decode_with). With beam_width <= 0 the candidate is
  /// bit-identical to try_decode(). The default ignores both and
  /// delegates, for sessions whose decoders have no external-workspace
  /// form (raptor, strider).
  virtual std::optional<util::BitVec> try_decode_with(
      spinal::detail::DecodeWorkspace& /*ws*/, int /*beam_width*/) {
    return try_decode();
  }

  /// The spinal CodeParams behind this session when it is backed by a
  /// spinal decoder (the decode runtime keys pinned workspaces and the
  /// adaptive beam policy on it); nullptr for non-spinal sessions.
  virtual const CodeParams* code_params() const { return nullptr; }

  /// Upper bound on chunks before the sender gives up on the message.
  virtual int max_chunks() const = 0;

  /// Receiver-side channel knowledge: the engine announces the noise
  /// variance once per run (real receivers estimate this from preambles;
  /// soft demappers need it, the spinal decoder does not).
  virtual void set_noise_hint(double /*noise_variance*/) {}
};

}  // namespace spinal::sim
