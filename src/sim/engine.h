#pragma once
// The rateless execution engine (§8.1): regulates the streaming of
// symbols from the encoder through the channel to the decoder, meters
// channel usage, and reports when (and with how many symbols) each
// message decodes.

#include <cstdint>

#include "sim/channel_sim.h"
#include "sim/session.h"

namespace spinal::sim {

struct RunResult {
  bool success = false;   ///< decoded correctly before the give-up bound
  long symbols = 0;       ///< symbols transmitted until success (or give-up)
  int chunks = 0;         ///< chunks transmitted
  int attempts = 0;       ///< decode attempts performed
};

struct EngineOptions {
  /// Attempt a decode after every this-many non-empty chunks.
  int attempt_every = 1;
  /// Geometric back-off: after each attempt the next one waits until the
  /// chunk count has grown by this factor (1.0 = attempt every
  /// attempt_every chunks). Caps decode-attempt cost at low SNR at a
  /// small rate penalty (a failed attempt wastes only compute; a late
  /// attempt wastes channel symbols).
  double attempt_growth = 1.0;
};

/// Streams one message through the session/channel until it decodes or
/// the session's give-up bound is hit. The engine validates candidate
/// messages against the transmitted message, standing in for the
/// link-layer CRC of §6 (a 16-bit CRC's 2^-16 false-accept rate is
/// negligible at the trial counts used here).
RunResult run_message(RatelessSession& session, ChannelSim& channel,
                      const util::BitVec& message, const EngineOptions& opt = {});

}  // namespace spinal::sim
