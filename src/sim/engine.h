#pragma once
// The rateless execution engine (§8.1): regulates the streaming of
// symbols from the encoder through the channel to the decoder, meters
// channel usage, and reports when (and with how many symbols) each
// message decodes.
//
// Two entry points share one implementation:
//   - run_message(): the blocking loop (stream, attempt, repeat) used by
//     the Monte-Carlo sweeps; and
//   - MessageRun: the non-blocking stepper behind it, which separates
//     "feed symbols until a decode attempt is due" from "apply an
//     attempt's outcome" so a runtime worker pool can interleave
//     thousands of runs and execute the decode attempts wherever it
//     likes (src/runtime/decode_service.h). Because run_message is
//     itself written over MessageRun, a deterministic runtime drive is
//     bit-identical to the sequential loop by construction.

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/channel_sim.h"
#include "sim/session.h"

namespace spinal::sim {

struct RunResult {
  bool success = false;   ///< decoded correctly before the give-up bound
  long symbols = 0;       ///< symbols transmitted until success (or give-up)
  int chunks = 0;         ///< chunks transmitted
  int attempts = 0;       ///< decode attempts performed
};

struct EngineOptions {
  /// Attempt a decode after every this-many non-empty chunks.
  int attempt_every = 1;
  /// Geometric back-off: after each attempt the next one waits until the
  /// chunk count has grown by this factor (1.0 = attempt every
  /// attempt_every chunks). Caps decode-attempt cost at low SNR at a
  /// small rate penalty (a failed attempt wastes only compute; a late
  /// attempt wastes channel symbols).
  double attempt_growth = 1.0;

  /// Throws std::invalid_argument unless attempt_every >= 1 and
  /// attempt_growth >= 1.0. Out-of-range values would silently stall
  /// the attempt schedule (attempt_every <= 0 makes next_attempt never
  /// advance past the current chunk count; attempt_growth < 1 would
  /// shrink it), so every engine entry point validates up front.
  void validate() const;
};

/// One message's streaming state machine, advanced cooperatively:
///
///   MessageRun run(session, channel, message, opt);
///   while (run.feed_to_attempt())
///     run.record_attempt(session.try_decode());   // or on a worker
///   use(run.result());
///
/// feed_to_attempt() streams chunks through the channel into the session
/// until the attempt policy fires; the caller then performs the decode
/// attempt however it likes (inline, or on a pool worker with pooled
/// scratch via RatelessSession::try_decode_with) and reports the
/// candidate back. Holds references only — the caller owns session,
/// channel and message and must keep them alive for the run's lifetime.
class MessageRun {
 public:
  /// Starts the run (validates @p opt, then session.start + noise hint).
  MessageRun(RatelessSession& session, ChannelSim& channel,
             const util::BitVec& message, const EngineOptions& opt = {});

  /// Streams chunks until a decode attempt is due. Returns true when an
  /// attempt should be performed now; false when the run finished first
  /// (success already recorded, or the chunk budget ran out).
  bool feed_to_attempt();

  /// Applies the outcome of the decode attempt requested by the last
  /// feed_to_attempt(). The engine validates the candidate against the
  /// transmitted message, standing in for the link-layer CRC of §6 (a
  /// 16-bit CRC's 2^-16 false-accept rate is negligible at the trial
  /// counts used here).
  void record_attempt(const std::optional<util::BitVec>& candidate);

  bool finished() const noexcept { return done_; }
  const RunResult& result() const noexcept { return result_; }
  RatelessSession& session() noexcept { return *session_; }
  const util::BitVec& message() const noexcept { return *message_; }

 private:
  RatelessSession* session_;
  ChannelSim* channel_;
  const util::BitVec* message_;
  EngineOptions opt_;

  RunResult result_;
  std::vector<std::complex<float>> csi_;
  int limit_;
  int chunk_ = 0;
  int nonempty_ = 0;
  int next_attempt_;
  bool done_ = false;
};

/// Streams one message through the session/channel until it decodes or
/// the session's give-up bound is hit (the blocking loop over
/// MessageRun). Throws std::invalid_argument on invalid @p opt.
RunResult run_message(RatelessSession& session, ChannelSim& channel,
                      const util::BitVec& message, const EngineOptions& opt = {});

}  // namespace spinal::sim
