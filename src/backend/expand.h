#pragma once
// The fused per-level expansion drivers, shared by every backend. A
// backend supplies an Ops policy (static member functions with the
// scalar_kernels.h signatures); the drivers contribute the level
// orchestration — child hashing, the shared one-at-a-time pre-mix, the
// per-symbol RNG draws, and the channel metric accumulation — so the
// symbol/block loop structure (and with it the float accumulation
// order) is identical across backends by construction. Only the lane
// loops inside Ops differ.
//
// Deliberately freestanding: no std:: algorithm or container calls.
// These templates are instantiated inside SIMD-flagged translation
// units, where any vague-linkage std instantiation could be compiled
// with wide instructions and then be the copy the linker keeps for the
// whole (baseline) binary. Scratch is sized by the caller (see the
// *Level structs); loops are hand-rolled.

#include <cstddef>
#include <cstdint>

#include "backend/backend.h"

namespace spinal::backend {

template <class Ops>
void awgn_expand_all_t(const AwgnLevel& L, const std::uint32_t* states,
                       std::size_t count, std::uint32_t fanout,
                       std::uint32_t* out_states, float* out_costs) {
  Ops::hash_children(L.kind, L.salt, states, count, fanout, out_states);
  const std::size_t total = count * static_cast<std::size_t>(fanout);
  for (std::size_t i = 0; i < total; ++i) out_costs[i] = 0.0f;
  if (L.nsym == 0 || total == 0) return;
  std::uint32_t* const w = L.rng_scratch;

  // One state pre-mix shared by every symbol's RNG draw (when the hash
  // kind factors; one-at-a-time does, saving half the mixes).
  const bool premixed =
      L.kind == hash::Kind::kOneAtATime && L.nsym > 1 && L.premix_scratch != nullptr;
  if (premixed) Ops::premix_n(L.salt, out_states, total, L.premix_scratch);

  for (std::uint32_t s = 0; s < L.nsym; ++s) {
    const std::uint32_t data = L.ord[s] ^ 0x80000000u;  // RNG domain separation
    if (premixed)
      Ops::hash_premixed_n(L.premix_scratch, total, data, w);
    else
      Ops::hash_n(L.kind, L.salt, out_states, total, data, w);
    if (!L.use_csi) {
      // y was quantised in the SoA build and the table entries are
      // pre-quantised, so fixed-point and float share one loop.
      Ops::awgn_accum(w, total, L.table, L.mask, L.cbits, L.y_re[s], L.y_im[s],
                      out_costs);
    } else if (L.fx_scale <= 0.0f) {
      Ops::awgn_csi_accum(w, total, L.raw_table, L.mask, L.cbits, L.y_re[s], L.y_im[s],
                          L.h_re[s], L.h_im[s], out_costs);
    } else {
      Ops::awgn_csi_fx_accum(w, total, L.raw_table, L.mask, L.cbits, L.y_re[s],
                             L.y_im[s], L.h_re[s], L.h_im[s], L.fx_scale, out_costs);
    }
  }
}

/// One AWGN metric sweep (symbol s) over lanes [0, total): RNG draw +
/// channel-mode accumulate. Shared between the full-width and the
/// compressed phases of the fused kernel so the per-lane op sequence —
/// and with it the float result — is identical by construction.
template <class Ops>
static inline void awgn_symbol_sweep(const AwgnLevel& L, std::uint32_t s,
                                     const std::uint32_t* lanes, bool premixed,
                                     std::size_t total, std::uint32_t* w,
                                     float* acc) {
  const std::uint32_t data = L.ord[s] ^ 0x80000000u;  // RNG domain separation
  if (!L.use_csi) {
    // Plain l2: the RNG draw feeds the metric expression directly, no
    // scratch round-trip (per-lane ops identical to the split form).
    Ops::awgn_sweep(L.kind, L.salt, premixed, lanes, total, data, L.table, L.mask,
                    L.cbits, L.y_re[s], L.y_im[s], w, acc);
    return;
  }
  if (premixed)
    Ops::hash_premixed_n(lanes, total, data, w);
  else
    Ops::hash_n(L.kind, L.salt, lanes, total, data, w);
  if (L.fx_scale <= 0.0f) {
    Ops::awgn_csi_accum(w, total, L.raw_table, L.mask, L.cbits, L.y_re[s], L.y_im[s],
                        L.h_re[s], L.h_im[s], acc);
  } else {
    Ops::awgn_csi_fx_accum(w, total, L.raw_table, L.mask, L.cbits, L.y_re[s], L.y_im[s],
                           L.h_re[s], L.h_im[s], L.fx_scale, acc);
  }
}

/// The fused streaming expansion+prune head of the d=1 search (see
/// Backend::awgn_expand_prune). Phase 1 runs child hashing, the shared
/// pre-mix and the first symbol's metric full-width; phase 2 compresses
/// to the partial-cost survivors and finishes the remaining symbols on
/// the compressed lanes only. With no live bound (or a single symbol)
/// it degenerates to expand_all + d1_prune in one pass.
template <class Ops>
std::size_t awgn_expand_prune_t(const AwgnLevel& L, const std::uint32_t* states,
                                const float* parent_cost, std::size_t count,
                                std::uint32_t fanout, std::uint32_t cand_base,
                                std::uint64_t bound_key, std::uint32_t* out_states,
                                std::uint64_t* out_keys) {
  const std::size_t total = count * static_cast<std::size_t>(fanout);
  if (L.nsym == 0 || total == 0) {
    Ops::hash_children(L.kind, L.salt, states, count, fanout, out_states);
    float* const acc0 = L.acc_scratch;
    for (std::size_t i = 0; i < total; ++i) acc0[i] = 0.0f;
    return Ops::d1_prune(parent_cost, acc0, count, fanout, cand_base, bound_key,
                         out_keys);
  }
  float* const acc = L.acc_scratch;
  std::uint32_t* const w = L.rng_scratch;

  // Child states and their RNG hash inputs in one fused pass: the
  // shared one-at-a-time pre-mix when the kind factors, the raw child
  // state otherwise. Either way the lane array is mutable scratch, so
  // phase 2 can compress it in place.
  const bool premixed = L.kind == hash::Kind::kOneAtATime && L.nsym > 1;
  std::uint32_t* const lanes = L.premix_scratch;
  Ops::hash_children_premix(L.kind, L.salt, premixed, states, count, fanout,
                            out_states, lanes);

  // First symbol *stores* its metric (0 + x == x exactly), replacing
  // the zero-fill + accumulate round-trip; CSI modes keep the
  // accumulate shape and pre-zero instead.
  if (!L.use_csi) {
    Ops::awgn_sweep0(L.kind, L.salt, premixed, lanes, total, L.ord[0] ^ 0x80000000u,
                     L.table, L.mask, L.cbits, L.y_re[0], L.y_im[0], w, acc);
  } else {
    for (std::size_t i = 0; i < total; ++i) acc[i] = 0.0f;
    awgn_symbol_sweep<Ops>(L, 0, lanes, premixed, total, w, acc);
  }
  if (L.nsym == 1 || bound_key == ~0ull) {
    // No pruning leverage: finish full-width, filter once at the end.
    for (std::uint32_t s = 1; s < L.nsym; ++s)
      awgn_symbol_sweep<Ops>(L, s, lanes, premixed, total, w, acc);
    return Ops::d1_prune(parent_cost, acc, count, fanout, cand_base, bound_key,
                         out_keys);
  }

  // Partial-cost prune: only survivors get the remaining symbols.
  const std::size_t n =
      Ops::partial_compress(parent_cost, acc, count, fanout, bound_key, lanes,
                            L.idx_scratch);
  for (std::uint32_t s = 1; s < L.nsym; ++s)
    awgn_symbol_sweep<Ops>(L, s, lanes, premixed, n, w, acc);
  int log2_fanout = 0;
  while ((1u << log2_fanout) < fanout) ++log2_fanout;
  return Ops::final_prune(parent_cost, acc, L.idx_scratch, n, log2_fanout, cand_base,
                          bound_key, out_keys);
}

/// Quantized awgn_expand_all (see Backend::awgn_expand_all_u16): the
/// metric is one pre-tabulated gather per symbol per child, accumulated
/// in u32 lanes and clamped to the u16 saturation point once at the
/// end (≡ a per-step saturating chain; see AwgnLevelQ).
template <class Ops>
void awgn_expand_all_u16_t(const AwgnLevelQ& L, const std::uint32_t* states,
                           std::size_t count, std::uint32_t fanout,
                           std::uint32_t* out_states, std::uint16_t* out_costs) {
  Ops::hash_children(L.kind, L.salt, states, count, fanout, out_states);
  const std::size_t total = count * static_cast<std::size_t>(fanout);
  if (L.nsym == 0 || total == 0) {
    for (std::size_t i = 0; i < total; ++i) out_costs[i] = 0;
    return;
  }
  std::uint32_t* const w = L.rng_scratch;
  std::uint32_t* const acc = L.acc_scratch;

  const bool premixed =
      L.kind == hash::Kind::kOneAtATime && L.nsym > 1 && L.premix_scratch != nullptr;
  if (premixed) Ops::premix_n(L.salt, out_states, total, L.premix_scratch);

  for (std::uint32_t s = 0; s < L.nsym; ++s) {
    const std::uint32_t data = L.ord[s] ^ 0x80000000u;  // RNG domain separation
    const std::uint16_t* const row = L.qtab + s * static_cast<std::size_t>(L.qstride);
    if (s == 0) {
      Ops::awgn_q_sweep0(L.kind, L.salt, premixed,
                         premixed ? L.premix_scratch : out_states, total, data, row,
                         L.qmask, w, acc);
    } else {
      Ops::awgn_q_sweep(L.kind, L.salt, premixed,
                        premixed ? L.premix_scratch : out_states, total, data, row,
                        L.qmask, w, acc);
    }
  }
  for (std::size_t i = 0; i < total; ++i)
    out_costs[i] = static_cast<std::uint16_t>(acc[i] > 65535u ? 65535u : acc[i]);
}

/// Quantized fused streaming expansion+prune (see
/// Backend::awgn_expand_prune_u16). Same phase structure as
/// awgn_expand_prune_t with two integer-only sharpenings: the level's
/// pre-tabulated metric floors gate whole rows before any hashing
/// (min_rest[0]) and tighten the partial-cost filter (min_rest[1]).
template <class Ops>
std::size_t awgn_expand_prune_u16_t(const AwgnLevelQ& L, const std::uint32_t* states,
                                    const std::uint16_t* parent_cost, std::size_t count,
                                    std::uint32_t fanout, std::uint32_t cand_base,
                                    std::uint32_t bound_key, std::uint32_t* out_states,
                                    std::uint32_t* out_keys) {
  const std::size_t total = count * static_cast<std::size_t>(fanout);
  std::uint32_t* const acc = L.acc_scratch;
  if (L.nsym == 0 || total == 0) {
    Ops::hash_children(L.kind, L.salt, states, count, fanout, out_states);
    for (std::size_t i = 0; i < total; ++i) acc[i] = 0;
    return Ops::d1_finalize_q(parent_cost, acc, count, fanout, cand_base, bound_key,
                              out_keys);
  }
  std::uint32_t* const w = L.rng_scratch;

  const bool premixed = L.kind == hash::Kind::kOneAtATime && L.nsym > 1;
  std::uint32_t* const lanes = L.premix_scratch;
  Ops::hash_children_premix(L.kind, L.salt, premixed, states, count, fanout,
                            out_states, lanes);

  Ops::awgn_q_sweep0(L.kind, L.salt, premixed, lanes, total, L.ord[0] ^ 0x80000000u,
                     L.qtab, L.qmask, w, acc);
  if (L.nsym == 1 || bound_key == 0xFFFFFFFFu) {
    for (std::uint32_t s = 1; s < L.nsym; ++s)
      Ops::awgn_q_sweep(L.kind, L.salt, premixed, lanes, total,
                        L.ord[s] ^ 0x80000000u,
                        L.qtab + s * static_cast<std::size_t>(L.qstride), L.qmask, w,
                        acc);
    return Ops::d1_finalize_q(parent_cost, acc, count, fanout, cand_base, bound_key,
                              out_keys);
  }

  // Partial-cost prune with the remaining-symbol floors folded in.
  const std::size_t n = Ops::partial_compress_u16(
      parent_cost, acc, count, fanout, L.min_rest[0], L.min_rest[1], bound_key, lanes,
      L.idx_scratch);
  for (std::uint32_t s = 1; s < L.nsym; ++s)
    Ops::awgn_q_sweep(L.kind, L.salt, premixed, lanes, n, L.ord[s] ^ 0x80000000u,
                      L.qtab + s * static_cast<std::size_t>(L.qstride), L.qmask, w,
                      acc);
  int log2_fanout = 0;
  while ((1u << log2_fanout) < fanout) ++log2_fanout;
  // Widen the block's parent costs once so the final gather is a plain
  // 32-bit gather on every backend; w is free after the last sweep.
  std::uint32_t* const parent32 = w;
  for (std::size_t i = 0; i < count; ++i) parent32[i] = parent_cost[i];
  return Ops::final_prune_u16(parent32, acc, L.idx_scratch, n, log2_fanout, cand_base,
                              bound_key, out_keys);
}

template <class Ops>
void bsc_expand_all_t(const BscLevel& L, const std::uint32_t* states, std::size_t count,
                      std::uint32_t fanout, std::uint32_t* out_states, float* out_costs) {
  Ops::hash_children(L.kind, L.salt, states, count, fanout, out_states);
  const std::size_t total = count * static_cast<std::size_t>(fanout);
  for (std::size_t i = 0; i < total; ++i) out_costs[i] = 0.0f;
  if (L.nsym == 0 || total == 0) return;
  std::uint32_t* const w = L.rng_scratch;
  std::uint64_t* const acc = L.acc_scratch;

  const bool premixed =
      L.kind == hash::Kind::kOneAtATime && L.nsym > 1 && L.premix_scratch != nullptr;
  if (premixed) Ops::premix_n(L.salt, out_states, total, L.premix_scratch);

  // Coded bits for 64 received symbols at a time are packed into one
  // word per child; the Hamming metric is XOR + popcount per block.
  for (std::uint32_t blk = 0; blk * 64 < L.nsym; ++blk) {
    const std::uint32_t rem = L.nsym - blk * 64;
    const std::uint32_t jmax = rem < 64 ? rem : 64;
    for (std::size_t i = 0; i < total; ++i) acc[i] = 0;
    for (std::uint32_t j = 0; j < jmax; ++j) {
      const std::uint32_t data = L.ord[blk * 64 + j] ^ 0x80000000u;
      if (premixed)
        Ops::hash_premixed_n(L.premix_scratch, total, data, w);
      else
        Ops::hash_n(L.kind, L.salt, out_states, total, data, w);
      Ops::bsc_gather_bit(w, total, j, acc);
    }
    Ops::bsc_hamming_add(acc, total, L.rx_words[blk], out_costs);
  }
}

}  // namespace spinal::backend
