#pragma once
// The fused per-level expansion drivers, shared by every backend. A
// backend supplies an Ops policy (static member functions with the
// scalar_kernels.h signatures); the drivers contribute the level
// orchestration — child hashing, the shared one-at-a-time pre-mix, the
// per-symbol RNG draws, and the channel metric accumulation — so the
// symbol/block loop structure (and with it the float accumulation
// order) is identical across backends by construction. Only the lane
// loops inside Ops differ.
//
// Deliberately freestanding: no std:: algorithm or container calls.
// These templates are instantiated inside SIMD-flagged translation
// units, where any vague-linkage std instantiation could be compiled
// with wide instructions and then be the copy the linker keeps for the
// whole (baseline) binary. Scratch is sized by the caller (see the
// *Level structs); loops are hand-rolled.

#include <cstddef>
#include <cstdint>

#include "backend/backend.h"

namespace spinal::backend {

template <class Ops>
void awgn_expand_all_t(const AwgnLevel& L, const std::uint32_t* states,
                       std::size_t count, std::uint32_t fanout,
                       std::uint32_t* out_states, float* out_costs) {
  Ops::hash_children(L.kind, L.salt, states, count, fanout, out_states);
  const std::size_t total = count * static_cast<std::size_t>(fanout);
  for (std::size_t i = 0; i < total; ++i) out_costs[i] = 0.0f;
  if (L.nsym == 0 || total == 0) return;
  std::uint32_t* const w = L.rng_scratch;

  // One state pre-mix shared by every symbol's RNG draw (when the hash
  // kind factors; one-at-a-time does, saving half the mixes).
  const bool premixed =
      L.kind == hash::Kind::kOneAtATime && L.nsym > 1 && L.premix_scratch != nullptr;
  if (premixed) Ops::premix_n(L.salt, out_states, total, L.premix_scratch);

  for (std::uint32_t s = 0; s < L.nsym; ++s) {
    const std::uint32_t data = L.ord[s] ^ 0x80000000u;  // RNG domain separation
    if (premixed)
      Ops::hash_premixed_n(L.premix_scratch, total, data, w);
    else
      Ops::hash_n(L.kind, L.salt, out_states, total, data, w);
    if (!L.use_csi) {
      // y was quantised in the SoA build and the table entries are
      // pre-quantised, so fixed-point and float share one loop.
      Ops::awgn_accum(w, total, L.table, L.mask, L.cbits, L.y_re[s], L.y_im[s],
                      out_costs);
    } else if (L.fx_scale <= 0.0f) {
      Ops::awgn_csi_accum(w, total, L.raw_table, L.mask, L.cbits, L.y_re[s], L.y_im[s],
                          L.h_re[s], L.h_im[s], out_costs);
    } else {
      Ops::awgn_csi_fx_accum(w, total, L.raw_table, L.mask, L.cbits, L.y_re[s],
                             L.y_im[s], L.h_re[s], L.h_im[s], L.fx_scale, out_costs);
    }
  }
}

template <class Ops>
void bsc_expand_all_t(const BscLevel& L, const std::uint32_t* states, std::size_t count,
                      std::uint32_t fanout, std::uint32_t* out_states, float* out_costs) {
  Ops::hash_children(L.kind, L.salt, states, count, fanout, out_states);
  const std::size_t total = count * static_cast<std::size_t>(fanout);
  for (std::size_t i = 0; i < total; ++i) out_costs[i] = 0.0f;
  if (L.nsym == 0 || total == 0) return;
  std::uint32_t* const w = L.rng_scratch;
  std::uint64_t* const acc = L.acc_scratch;

  const bool premixed =
      L.kind == hash::Kind::kOneAtATime && L.nsym > 1 && L.premix_scratch != nullptr;
  if (premixed) Ops::premix_n(L.salt, out_states, total, L.premix_scratch);

  // Coded bits for 64 received symbols at a time are packed into one
  // word per child; the Hamming metric is XOR + popcount per block.
  for (std::uint32_t blk = 0; blk * 64 < L.nsym; ++blk) {
    const std::uint32_t rem = L.nsym - blk * 64;
    const std::uint32_t jmax = rem < 64 ? rem : 64;
    for (std::size_t i = 0; i < total; ++i) acc[i] = 0;
    for (std::uint32_t j = 0; j < jmax; ++j) {
      const std::uint32_t data = L.ord[blk * 64 + j] ^ 0x80000000u;
      if (premixed)
        Ops::hash_premixed_n(L.premix_scratch, total, data, w);
      else
        Ops::hash_n(L.kind, L.salt, out_states, total, data, w);
      Ops::bsc_gather_bit(w, total, j, acc);
    }
    Ops::bsc_hamming_add(acc, total, L.rx_words[blk], out_costs);
  }
}

}  // namespace spinal::backend
