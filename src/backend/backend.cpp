// Backend registry: runtime CPU-feature detection, the SPINAL_BACKEND
// environment override, and the shared packed-key selection kernels.
// This TU is always compiled with baseline flags — the shared kernels
// defined here are the copies every backend's table points at, so they
// must run on any CPU the binary reaches.

#include "backend/backends_impl.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "backend/scalar_kernels.h"

#if defined(SPINAL_BACKEND_HAVE_NEON) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace spinal::backend {

void shared_build_keys(const float* costs, std::size_t count, std::uint64_t* keys) {
  scalar::build_keys(costs, count, keys);
}

namespace {

/// Branchless Lomuto partition of keys[lo, hi) on pred "byte at shift
/// <= T": every element is unconditionally swapped toward the front and
/// the boundary advances by the predicate value, so the selection cost
/// does not depend on branch prediction (real cost keys arrive
/// near-sorted and clustered — poison for branchy partitions). Returns
/// the boundary: [lo, ret) satisfies the predicate.
inline std::size_t partition_le(std::uint64_t* keys, std::size_t lo, std::size_t hi,
                                int shift, std::uint64_t T) {
  std::size_t m = lo;
  for (std::size_t j = lo; j < hi; ++j) {
    const std::uint64_t x = keys[j];
    keys[j] = keys[m];
    keys[m] = x;
    m += ((x >> shift) & 0xFF) <= T;
  }
  return m;
}

/// Ascending LSD radix sort of keys[0, n): branch-free counting passes,
/// skipping bytes on which all keys agree (cost keys cluster, so most
/// high bytes are constant). Falls back to std::sort above the stack
/// scratch size — selection keeps B candidates, so this only triggers
/// for beams wider than 4096.
inline void sort_keys_prefix(std::uint64_t* keys, std::size_t n) {
  constexpr std::size_t kScratch = 4096;
  if (n < 2) return;
  if (n > kScratch) {
    std::sort(keys, keys + n);
    return;
  }
  std::uint64_t k0 = keys[0], diff = 0;
  for (std::size_t i = 1; i < n; ++i) diff |= keys[i] ^ k0;
  std::uint64_t tmp[kScratch];
  std::uint64_t* src = keys;
  std::uint64_t* dst = tmp;
  // LSD passes over the differing COST bytes only (16-bit counters:
  // for the streaming pipeline's kept-prefix sorts — a few hundred
  // keys, every level — the histogram zeroing dominates, and skipping
  // the candidate-index bytes drops the pass count further). Equal-cost
  // runs come out in scrambled order and are fixed afterwards; float
  // costs make exact ties rare (integer Hamming costs tie more, but
  // then the runs sort in one comparison burst each).
  for (int shift = 32; shift < 64; shift += 8) {
    if (((diff >> shift) & 0xFF) == 0) continue;  // constant byte
    std::uint16_t off[256] = {};
    for (std::size_t i = 0; i < n; ++i) ++off[(src[i] >> shift) & 0xFF];
    std::uint16_t sum = 0;
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint16_t c = off[b];
      off[b] = sum;
      sum = static_cast<std::uint16_t>(sum + c);
    }
    for (std::size_t i = 0; i < n; ++i) dst[off[(src[i] >> shift) & 0xFF]++] = src[i];
    std::swap(src, dst);
  }
  if (src != keys) std::memcpy(keys, src, n * sizeof(std::uint64_t));
  // Keys are unique, so equal-cost runs order deterministically by the
  // candidate index in their low words.
  std::size_t run = 0;
  while (run < n) {
    std::size_t end = run + 1;
    while (end < n && (keys[end] >> 32) == (keys[run] >> 32)) ++end;
    if (end - run > 1) std::sort(keys + run, keys + end);
    run = end;
  }
}

/// u32 twin of partition_le for the quantized path's narrow keys.
inline std::size_t partition_le_u32(std::uint32_t* keys, std::size_t lo, std::size_t hi,
                                    int shift, std::uint32_t T) {
  std::size_t m = lo;
  for (std::size_t j = lo; j < hi; ++j) {
    const std::uint32_t x = keys[j];
    keys[j] = keys[m];
    keys[m] = x;
    m += ((x >> shift) & 0xFF) <= T;
  }
  return m;
}

/// Ascending LSD radix sort of u32 keys[0, n). Unlike the u64 variant,
/// the passes cover every differing byte — the full u32 key orders as
/// (cost, candidate) directly, so there are no equal-key runs to fix
/// afterwards (candidate indices are unique).
inline void sort_keys_prefix_u32(std::uint32_t* keys, std::size_t n) {
  constexpr std::size_t kScratch = 4096;
  if (n < 2) return;
  if (n > kScratch) {
    std::sort(keys, keys + n);
    return;
  }
  std::uint32_t k0 = keys[0], diff = 0;
  for (std::size_t i = 1; i < n; ++i) diff |= keys[i] ^ k0;
  std::uint32_t tmp[kScratch];
  std::uint32_t* src = keys;
  std::uint32_t* dst = tmp;
  for (int shift = 0; shift < 32; shift += 8) {
    if (((diff >> shift) & 0xFF) == 0) continue;  // constant byte
    std::uint16_t off[256] = {};
    for (std::size_t i = 0; i < n; ++i) ++off[(src[i] >> shift) & 0xFF];
    std::uint16_t sum = 0;
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint16_t c = off[b];
      off[b] = sum;
      sum = static_cast<std::uint16_t>(sum + c);
    }
    for (std::size_t i = 0; i < n; ++i) dst[off[(src[i] >> shift) & 0xFF]++] = src[i];
    std::swap(src, dst);
  }
  if (src != keys) std::memcpy(keys, src, n * sizeof(std::uint32_t));
}

}  // namespace

void shared_partition_keys(std::uint64_t* keys, std::size_t count, std::size_t keep) {
  if (keep == 0 || keep >= count) return;
  // Radix select: peel the key bytes from the top, keeping a single
  // ambiguous block [lo, hi) that straddles the keep boundary. Each
  // round histograms the block's highest differing byte, picks the
  // threshold value T whose bucket contains the boundary, and
  // partitions the block (< T kept outright, > T dropped, == T stays
  // ambiguous). Real cost keys cluster tightly and arrive nearly
  // sorted, which drives introselect (nth_element) to several times its
  // random-input cost; everything here is a sequential branch-free
  // scan, immune to input order. Keys are unique (candidate index in
  // the low bits), so the kept *set* is exactly nth_element's, and the
  // final prefix sort fixes the kept *order* — bit-identical selection,
  // per the Backend::select_keys contract.
  std::size_t lo = 0, hi = count;  // ambiguous block
  std::size_t need = keep;         // how many of [lo, hi) are kept
  while (need > 0 && need < hi - lo) {
    // Jump straight to the highest byte where the block differs (an
    // OR-reduction of XORs against one element — independent ops, so
    // it streams). Clustered costs share their top bytes; scanning
    // them byte-by-byte would re-walk the full block per byte.
    const std::uint64_t k0 = keys[lo];
    std::uint64_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
    std::size_t i = lo;
    for (; i + 4 <= hi; i += 4) {
      d0 |= keys[i] ^ k0;
      d1 |= keys[i + 1] ^ k0;
      d2 |= keys[i + 2] ^ k0;
      d3 |= keys[i + 3] ^ k0;
    }
    for (; i < hi; ++i) d0 |= keys[i] ^ k0;
    const std::uint64_t diff = d0 | d1 | d2 | d3;
    if (diff == 0) break;  // unreachable with unique keys; defensive
    const int shift = (63 - std::countl_zero(diff)) & ~7;

    // Histogram of that byte. Large blocks use 4 interleaved tables:
    // clustered keys hit the same bucket over and over, and a single
    // table would serialise on the store-to-load dependence. Small
    // blocks — the streaming pipeline's survivor sets, a few hundred
    // keys per refinement — use one table: zeroing 4 KiB of counters
    // would cost more than the whole scan.
    std::uint32_t cnt[4][256];
    std::uint32_t* const c0 = cnt[0];
    if (hi - lo >= 1024) {
      std::memset(cnt, 0, sizeof(cnt));
      i = lo;
      for (; i + 4 <= hi; i += 4) {
        ++cnt[0][(keys[i] >> shift) & 0xFF];
        ++cnt[1][(keys[i + 1] >> shift) & 0xFF];
        ++cnt[2][(keys[i + 2] >> shift) & 0xFF];
        ++cnt[3][(keys[i + 3] >> shift) & 0xFF];
      }
      for (; i < hi; ++i) ++cnt[0][(keys[i] >> shift) & 0xFF];
      for (unsigned b = 0; b < 256; ++b) c0[b] += cnt[1][b] + cnt[2][b] + cnt[3][b];
    } else {
      std::memset(c0, 0, sizeof(cnt[0]));
      for (i = lo; i < hi; ++i) ++c0[(keys[i] >> shift) & 0xFF];
    }

    // Threshold byte T: its bucket straddles the keep boundary.
    std::size_t acc = 0;
    unsigned T = 0;
    for (;; ++T) {
      const std::size_t c = c0[T];
      if (acc + c > need) break;
      acc += c;
    }
    // Two branchless passes: move byte <= T to the front, then split
    // that prefix into the kept < T part and the still-ambiguous == T
    // block. (T == 0 has no < T part: one pass, ambiguous prefix.)
    if (T == 0) {
      hi = partition_le(keys, lo, hi, shift, 0);
      continue;
    }
    const std::size_t le = partition_le(keys, lo, hi, shift, T);
    const std::size_t lt = partition_le(keys, lo, le, shift, T - 1);
    need -= lt - lo;
    lo = lt;
    hi = le;
  }
}

void shared_select_keys(std::uint64_t* keys, std::size_t count, std::size_t keep) {
  if (keep == 0 || keep >= count) return;
  shared_partition_keys(keys, count, keep);
  sort_keys_prefix(keys, keep);
}

void shared_partition_keys_u32(std::uint32_t* keys, std::size_t count, std::size_t keep) {
  if (keep == 0 || keep >= count) return;
  // Radix select over the quantized path's 4-byte keys. Keys are
  // unique ((cost << 16) | candidate with distinct candidate indices),
  // so the kept set matches nth_element exactly.
  //
  // This runs hotter than the u64 variant relative to its kernels (the
  // integer expand is cheaper than the f32 one, so selection is a
  // bigger slice of the decode), so the rounds are leaner: the varying
  // bytes are found by ONE up-front diff scan instead of one per round
  // (a round's ambiguous block only ever varies in a subset of the
  // parent's bytes), and each round is histogram + one three-way
  // scatter pass — byte < T compacts in place (the write cursor can't
  // pass the read index), byte == T spills to a scratch block copied
  // back right behind it, byte > T is dropped — instead of histogram +
  // two branchless partition passes.
  std::size_t lo = 0, hi = count;  // ambiguous block
  std::size_t need = keep;         // how many of [lo, hi) are kept
  std::uint32_t diff;
  {
    const std::uint32_t k0 = keys[0];
    std::uint32_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      d0 |= keys[i] ^ k0;
      d1 |= keys[i + 1] ^ k0;
      d2 |= keys[i + 2] ^ k0;
      d3 |= keys[i + 3] ^ k0;
    }
    for (; i < count; ++i) d0 |= keys[i] ^ k0;
    diff = d0 | d1 | d2 | d3;
  }
  if (diff == 0) return;  // unreachable with unique keys; defensive
  int shift = (31 - std::countl_zero(diff)) & ~7;

  constexpr std::size_t kEqScratch = 4096;
  std::uint32_t eqbuf[kEqScratch];

  while (need > 0 && need < hi - lo) {
    // Histogram of the block's byte at `shift`. Large blocks use 4
    // interleaved tables (clustered keys hammer one bucket; a single
    // table serialises on the store-to-load dependence), small blocks
    // a single one (zeroing 4 KiB would outweigh the scan).
    std::uint32_t cnt[4][256];
    std::uint32_t* const c0 = cnt[0];
    std::size_t i;
    if (hi - lo >= 1024) {
      std::memset(cnt, 0, sizeof(cnt));
      i = lo;
      for (; i + 4 <= hi; i += 4) {
        ++cnt[0][(keys[i] >> shift) & 0xFF];
        ++cnt[1][(keys[i + 1] >> shift) & 0xFF];
        ++cnt[2][(keys[i + 2] >> shift) & 0xFF];
        ++cnt[3][(keys[i + 3] >> shift) & 0xFF];
      }
      for (; i < hi; ++i) ++cnt[0][(keys[i] >> shift) & 0xFF];
      for (unsigned b = 0; b < 256; ++b) c0[b] += cnt[1][b] + cnt[2][b] + cnt[3][b];
    } else {
      std::memset(c0, 0, sizeof(cnt[0]));
      for (i = lo; i < hi; ++i) ++c0[(keys[i] >> shift) & 0xFF];
    }

    // Threshold byte T: its bucket straddles the keep boundary.
    std::size_t acc = 0;
    unsigned T = 0;
    for (;; ++T) {
      const std::size_t c = c0[T];
      if (acc + c > need) break;
      acc += c;
    }
    const std::size_t eqc = c0[T];

    if (acc != 0 || eqc != hi - lo) {  // byte constant in block: descend only
      if (eqc <= kEqScratch) {
        std::size_t m = lo, eq = 0;
        for (std::size_t j = lo; j < hi; ++j) {
          const std::uint32_t x = keys[j];
          const unsigned b = (x >> shift) & 0xFF;
          keys[m] = x;
          m += b < T;
          eqbuf[eq] = x;
          eq += b == T;
        }
        std::memcpy(keys + m, eqbuf, eq * sizeof(std::uint32_t));
        need -= m - lo;
        lo = m;
        hi = m + eq;
      } else {  // == T block outgrew the scratch: in-place two-pass split
        const std::size_t le = partition_le_u32(keys, lo, hi, shift, T);
        const std::size_t lt =
            T ? partition_le_u32(keys, lo, le, shift, T - 1) : lo;
        need -= lt - lo;
        lo = lt;
        hi = le;
      }
    }

    if (shift == 0) break;  // all-equal block; unreachable with unique keys
    const std::uint32_t below = diff & ((1u << shift) - 1u);
    if (below == 0) break;
    shift = (31 - std::countl_zero(below)) & ~7;
  }
}

void shared_select_keys_u32(std::uint32_t* keys, std::size_t count, std::size_t keep) {
  if (keep == 0) return;
  // keep >= count degenerates to a full ascending sort — the quantized
  // finalize leans on this instead of std::sort (the radix passes beat
  // introsort's mispredicts on a few hundred clustered keys).
  if (keep < count) shared_partition_keys_u32(keys, count, keep);
  sort_keys_prefix_u32(keys, std::min(keep, count));
}

namespace {

#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
// __builtin_cpu_supports runs CPUID (and XGETBV for the AVX family, so
// OS save support is included) and caches the result.
[[maybe_unused]] bool cpu_has_sse42() { return __builtin_cpu_supports("sse4.2") != 0; }
[[maybe_unused]] bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
#else
[[maybe_unused]] bool cpu_has_sse42() { return false; }
[[maybe_unused]] bool cpu_has_avx2() { return false; }
#endif

#if defined(SPINAL_BACKEND_HAVE_NEON)
bool cpu_has_neon() {
#if defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  return true;  // ASIMD is architectural on aarch64
#endif
}
#endif

/// Detection order: scalar first, widest last — the default pick is
/// the back of the list.
const std::vector<const Backend*>& registry() {
  static const std::vector<const Backend*> r = [] {
    std::vector<const Backend*> v;
    v.push_back(scalar_backend());
#if defined(SPINAL_BACKEND_HAVE_SSE42)
    if (cpu_has_sse42()) v.push_back(sse42_backend());
#endif
#if defined(SPINAL_BACKEND_HAVE_AVX2)
    if (cpu_has_avx2()) v.push_back(avx2_backend());
#endif
#if defined(SPINAL_BACKEND_HAVE_NEON)
    if (cpu_has_neon()) v.push_back(neon_backend());
#endif
    return v;
  }();
  return r;
}

/// Mutable slot behind active(); resolved lazily so the SPINAL_BACKEND
/// override is read exactly once, at first use. resolve() itself
/// prints the diagnostic (with the available-backend list) on an
/// unknown name, so every resolution path tells the user what the
/// valid names are.
const Backend*& active_slot() {
  static const Backend* slot = [] {
    const char* env = std::getenv("SPINAL_BACKEND");
    bool warned = false;
    return resolve(env ? std::string_view(env) : std::string_view(), &warned);
  }();
  return slot;
}

}  // namespace

const std::vector<const Backend*>& available() noexcept { return registry(); }

const Backend* find(std::string_view name) noexcept {
  for (const Backend* b : registry())
    if (name == b->name) return b;
  return nullptr;
}

std::string available_names() {
  std::string names;
  for (const Backend* b : registry()) {
    if (!names.empty()) names += ' ';
    names += b->name;
  }
  return names;
}

const Backend* resolve(std::string_view env_value, bool* warned) noexcept {
  if (!env_value.empty()) {
    if (const Backend* b = find(env_value)) return b;
    if (warned) *warned = true;
    const Backend* best = registry().back();
    std::fprintf(stderr,
                 "spinal: SPINAL_BACKEND=%.*s is not available; using '%s' "
                 "(available: %s)\n",
                 static_cast<int>(env_value.size()), env_value.data(), best->name,
                 available_names().c_str());
    return best;
  }
  return registry().back();
}

const Backend& active() noexcept { return *active_slot(); }

bool force(std::string_view name) noexcept {
  const Backend* b = find(name);
  if (b == nullptr) return false;
  active_slot() = b;
  return true;
}

}  // namespace spinal::backend
