// ARM NEON backend: 4 uint32 lanes, aarch64 only (see vec_neon.h).
// ASIMD is architectural on aarch64, so no extra -m flags are needed;
// the registry still auxval-probes before handing the table out.

#include "backend/backends_impl.h"

#if defined(__aarch64__)

#include "backend/expand.h"
#include "backend/simd_kernels.h"
#include "backend/vec_neon.h"

namespace spinal::backend {
namespace {
using Ops = simd::SimdOps<simd::VecNeon>;
}  // namespace

const Backend* neon_backend() noexcept {
  static const Backend b{
      "neon",
      4,
      Ops::hash_n,
      Ops::hash_children,
      Ops::premix_n,
      Ops::hash_premixed_n,
      awgn_expand_all_t<Ops>,
      bsc_expand_all_t<Ops>,
      awgn_expand_prune_t<Ops>,
      shared_build_keys,
      Ops::d1_prune,
      Ops::row_mins,
      Ops::regroup_emit,
      shared_partition_keys,
      shared_select_keys,
      Ops::xor_rows,
      awgn_expand_all_u16_t<Ops>,
      awgn_expand_prune_u16_t<Ops>,
      Ops::d1_prune_u16,
      Ops::row_mins_u16,
      Ops::regroup_emit_u16,
      shared_partition_keys_u32,
      shared_select_keys_u32,
  };
  return &b;
}

}  // namespace spinal::backend

#endif  // __aarch64__
