#pragma once
// Portable scalar kernel primitives — the reference semantics every
// SIMD backend must reproduce bit-for-bit, and the tail loops those
// backends run on the last count % lanes elements. All kernels are
// elementwise over the lane index, so a tail is just the same function
// on offset pointers. The float expressions here are the single source
// of truth for the metric shapes: a SIMD backend may reorder *lanes*
// but never the per-lane sequence of adds/mults (and never contract
// them into FMAs — the build pins -ffp-contract=off).
//
// Everything is `static inline` (internal linkage): each translation
// unit gets its own copy, so a copy compiled inside a SIMD-flagged TU
// can never be vague-linkage-merged into the baseline binary and run
// on a CPU without that ISA. For the same reason no std:: template is
// called here (popcount via builtin, min via ternary).

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "backend/backend.h"
#include "hash/jenkins.h"
#include "hash/salsa20.h"

namespace spinal::backend::scalar {

/// The one-at-a-time seed derivation shared by every backend (folds the
/// salt into the initial value; see SpineHash::operator()).
static inline std::uint32_t oaat_seed(std::uint32_t salt) noexcept {
  return salt ^ 0x2545F491u;
}

static inline void hash_n(hash::Kind kind, std::uint32_t salt,
                          const std::uint32_t* states, std::size_t count,
                          std::uint32_t data, std::uint32_t* out) noexcept {
  switch (kind) {
    case hash::Kind::kOneAtATime: {
      const std::uint32_t seed = oaat_seed(salt);
      for (std::size_t i = 0; i < count; ++i)
        out[i] = hash::one_at_a_time_word(hash::one_at_a_time_word(seed, states[i]), data);
      break;
    }
    case hash::Kind::kLookup3:
      for (std::size_t i = 0; i < count; ++i)
        out[i] = hash::lookup3_pair(states[i], data, salt);
      break;
    case hash::Kind::kSalsa20:
      for (std::size_t i = 0; i < count; ++i)
        out[i] = hash::salsa20_pair(states[i], data, salt);
      break;
  }
}

static inline void premix_n(std::uint32_t salt, const std::uint32_t* states,
                            std::size_t count, std::uint32_t* out) noexcept {
  const std::uint32_t seed = oaat_seed(salt);
  for (std::size_t i = 0; i < count; ++i) out[i] = hash::one_at_a_time_word(seed, states[i]);
}

static inline void hash_premixed_n(const std::uint32_t* premixed, std::size_t count,
                                   std::uint32_t data, std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < count; ++i)
    out[i] = hash::one_at_a_time_word(premixed[i], data);
}

/// Child-major (out[i*fanout + v] = h(states[i], v)): a leaf's children
/// are contiguous, so the d=1 search consumes the output with no
/// scatter (see Backend::hash_children).
static inline void hash_children(hash::Kind kind, std::uint32_t salt,
                                 const std::uint32_t* states, std::size_t count,
                                 std::uint32_t fanout, std::uint32_t* out) noexcept {
  if (kind == hash::Kind::kOneAtATime) {
    // The state pre-mix is chunk-independent: one mix per leaf, then
    // fanout data mixes writing the leaf's contiguous child row.
    const std::uint32_t seed = oaat_seed(salt);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t premix = hash::one_at_a_time_word(seed, states[i]);
      std::uint32_t* row = out + i * static_cast<std::size_t>(fanout);
      for (std::uint32_t v = 0; v < fanout; ++v)
        row[v] = hash::one_at_a_time_word(premix, v);
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t* row = out + i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; ++v)
      row[v] = kind == hash::Kind::kLookup3 ? hash::lookup3_pair(states[i], v, salt)
                                            : hash::salsa20_pair(states[i], v, salt);
  }
}

/// Appendix-B grid quantisation; nearbyintf under the (default)
/// round-to-nearest-even mode, which SIMD backends match with a
/// current-rounding-direction round instruction.
static inline float fx_quantise(float v, float scale) noexcept {
  return std::nearbyintf(v * scale) / scale;
}

/// acc[i] += |y - x(w[i])|^2 over the constellation table.
static inline void awgn_accum(const std::uint32_t* w, std::size_t count,
                              const float* table, std::uint32_t mask, int cbits,
                              float yr, float yi, float* acc) noexcept {
  const float* const __restrict t = table;
  float* const __restrict oc = acc;
  for (std::size_t i = 0; i < count; ++i) {
    const float xr = t[w[i] & mask];
    const float xi = t[(w[i] >> cbits) & mask];
    const float dr = yr - xr, di = yi - xi;
    oc[i] += dr * dr + di * di;
  }
}

/// acc[i] += |y - h·x(w[i])|^2 (coherent CSI metric, §8.3).
static inline void awgn_csi_accum(const std::uint32_t* w, std::size_t count,
                                  const float* table, std::uint32_t mask, int cbits,
                                  float yr, float yi, float hr, float hi,
                                  float* acc) noexcept {
  const float* const __restrict t = table;
  float* const __restrict oc = acc;
  for (std::size_t i = 0; i < count; ++i) {
    const float xr = t[w[i] & mask];
    const float xi = t[(w[i] >> cbits) & mask];
    const float rr = hr * xr - hi * xi;
    const float ri = hr * xi + hi * xr;
    const float dr = yr - rr, di = yi - ri;
    oc[i] += dr * dr + di * di;
  }
}

/// CSI + fixed point: h·x quantised to the Appendix-B grid in-kernel.
static inline void awgn_csi_fx_accum(const std::uint32_t* w, std::size_t count,
                                     const float* table, std::uint32_t mask, int cbits,
                                     float yr, float yi, float hr, float hi,
                                     float fx_scale, float* acc) noexcept {
  const float* const __restrict t = table;
  float* const __restrict oc = acc;
  for (std::size_t i = 0; i < count; ++i) {
    const float xr = t[w[i] & mask];
    const float xi = t[(w[i] >> cbits) & mask];
    const float rr = fx_quantise(hr * xr - hi * xi, fx_scale);
    const float ri = fx_quantise(hr * xi + hi * xr, fx_scale);
    const float dr = yr - rr, di = yi - ri;
    oc[i] += dr * dr + di * di;
  }
}

/// acc[i] |= (w[i] & 1) << j — gathers one coded bit per child into the
/// packed 64-symbol accumulator.
static inline void bsc_gather_bit(const std::uint32_t* w, std::size_t count,
                                  std::uint32_t j, std::uint64_t* acc) noexcept {
  std::uint64_t* const __restrict a = acc;
  for (std::size_t i = 0; i < count; ++i)
    a[i] |= static_cast<std::uint64_t>(w[i] & 1u) << j;
}

/// costs[i] += popcount(acc[i] ^ rx_word) — the Hamming metric per
/// 64-symbol block (small exact integers, so float addition is exact).
static inline void bsc_hamming_add(const std::uint64_t* acc, std::size_t count,
                                   std::uint64_t rx_word, float* costs) noexcept {
  float* const __restrict oc = costs;
  for (std::size_t i = 0; i < count; ++i)
    oc[i] += static_cast<float>(__builtin_popcountll(acc[i] ^ rx_word));
}

/// keys[i] = monotone_key(costs[i]) << 32 | i.
static inline void build_keys(const float* costs, std::size_t count,
                              std::uint64_t* keys) noexcept {
  for (std::size_t i = 0; i < count; ++i)
    keys[i] = (static_cast<std::uint64_t>(monotone_key(costs[i])) << 32) |
              static_cast<std::uint32_t>(i);
}

/// Fused d=1 candidate finalize (see Backend::d1_keys): child-major
/// costs plus the parent cost, and packed selection keys, in one sweep.
static inline void d1_keys(const float* parent_cost, const float* child_cost,
                           std::size_t count, std::uint32_t fanout, float* cand_cost,
                           std::uint64_t* keys) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    const float pc = parent_cost[i];
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; ++v) {
      const float cost = pc + child_cost[row + v];
      cand_cost[row + v] = cost;
      keys[row + v] = (static_cast<std::uint64_t>(monotone_key(cost)) << 32) |
                      static_cast<std::uint32_t>(row + v);
    }
  }
}

}  // namespace spinal::backend::scalar
