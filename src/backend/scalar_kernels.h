#pragma once
// Portable scalar kernel primitives — the reference semantics every
// SIMD backend must reproduce bit-for-bit, and the tail loops those
// backends run on the last count % lanes elements. All kernels are
// elementwise over the lane index, so a tail is just the same function
// on offset pointers. The float expressions here are the single source
// of truth for the metric shapes: a SIMD backend may reorder *lanes*
// but never the per-lane sequence of adds/mults (and never contract
// them into FMAs — the build pins -ffp-contract=off).
//
// Everything is `static inline` (internal linkage): each translation
// unit gets its own copy, so a copy compiled inside a SIMD-flagged TU
// can never be vague-linkage-merged into the baseline binary and run
// on a CPU without that ISA. For the same reason no std:: template is
// called here (popcount via builtin, min via ternary).

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "backend/backend.h"
#include "hash/jenkins.h"
#include "hash/salsa20.h"

namespace spinal::backend::scalar {

/// The one-at-a-time seed derivation shared by every backend (folds the
/// salt into the initial value; see SpineHash::operator()).
static inline std::uint32_t oaat_seed(std::uint32_t salt) noexcept {
  return salt ^ 0x2545F491u;
}

static inline void hash_n(hash::Kind kind, std::uint32_t salt,
                          const std::uint32_t* states, std::size_t count,
                          std::uint32_t data, std::uint32_t* out) noexcept {
  switch (kind) {
    case hash::Kind::kOneAtATime: {
      const std::uint32_t seed = oaat_seed(salt);
      for (std::size_t i = 0; i < count; ++i)
        out[i] = hash::one_at_a_time_word(hash::one_at_a_time_word(seed, states[i]), data);
      break;
    }
    case hash::Kind::kLookup3:
      for (std::size_t i = 0; i < count; ++i)
        out[i] = hash::lookup3_pair(states[i], data, salt);
      break;
    case hash::Kind::kSalsa20:
      for (std::size_t i = 0; i < count; ++i)
        out[i] = hash::salsa20_pair(states[i], data, salt);
      break;
  }
}

static inline void premix_n(std::uint32_t salt, const std::uint32_t* states,
                            std::size_t count, std::uint32_t* out) noexcept {
  const std::uint32_t seed = oaat_seed(salt);
  for (std::size_t i = 0; i < count; ++i) out[i] = hash::one_at_a_time_word(seed, states[i]);
}

static inline void hash_premixed_n(const std::uint32_t* premixed, std::size_t count,
                                   std::uint32_t data, std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < count; ++i)
    out[i] = hash::one_at_a_time_word(premixed[i], data);
}

/// Child-major (out[i*fanout + v] = h(states[i], v)): a leaf's children
/// are contiguous, so the d=1 search consumes the output with no
/// scatter (see Backend::hash_children).
static inline void hash_children(hash::Kind kind, std::uint32_t salt,
                                 const std::uint32_t* states, std::size_t count,
                                 std::uint32_t fanout, std::uint32_t* out) noexcept {
  if (kind == hash::Kind::kOneAtATime) {
    // The state pre-mix is chunk-independent: one mix per leaf, then
    // fanout data mixes writing the leaf's contiguous child row.
    const std::uint32_t seed = oaat_seed(salt);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t premix = hash::one_at_a_time_word(seed, states[i]);
      std::uint32_t* row = out + i * static_cast<std::size_t>(fanout);
      for (std::uint32_t v = 0; v < fanout; ++v)
        row[v] = hash::one_at_a_time_word(premix, v);
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t* row = out + i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; ++v)
      row[v] = kind == hash::Kind::kLookup3 ? hash::lookup3_pair(states[i], v, salt)
                                            : hash::salsa20_pair(states[i], v, salt);
  }
}

/// Fused child hash + RNG-lane derivation for the streaming pipeline:
/// writes every child state AND its RNG hash input in one pass, while
/// the child state is still in a register. The RNG lane is the shared
/// one-at-a-time pre-mix when @p premix is set (kOneAtATime, several
/// symbols), the raw child state otherwise — exactly what the split
/// hash_children + premix_n (or state copy) sequence produces.
static inline void hash_children_premix(hash::Kind kind, std::uint32_t salt,
                                        bool premix, const std::uint32_t* states,
                                        std::size_t count, std::uint32_t fanout,
                                        std::uint32_t* out_states,
                                        std::uint32_t* out_lanes) noexcept {
  // Split passes on purpose: each plain loop auto-vectorizes with
  // baseline instructions, which is where the scalar backend's
  // throughput comes from. Explicit-SIMD backends fuse the passes
  // instead (see simd_kernels.h).
  hash_children(kind, salt, states, count, fanout, out_states);
  const std::size_t total = count * static_cast<std::size_t>(fanout);
  if (kind == hash::Kind::kOneAtATime && premix) {
    premix_n(salt, out_states, total, out_lanes);
  } else {
    for (std::size_t i = 0; i < total; ++i) out_lanes[i] = out_states[i];
  }
}

/// Appendix-B grid quantisation; nearbyintf under the (default)
/// round-to-nearest-even mode, which SIMD backends match with a
/// current-rounding-direction round instruction.
static inline float fx_quantise(float v, float scale) noexcept {
  return std::nearbyintf(v * scale) / scale;
}

/// acc[i] += |y - x(w[i])|^2 over the constellation table.
static inline void awgn_accum(const std::uint32_t* w, std::size_t count,
                              const float* table, std::uint32_t mask, int cbits,
                              float yr, float yi, float* acc) noexcept {
  const float* const __restrict t = table;
  float* const __restrict oc = acc;
  for (std::size_t i = 0; i < count; ++i) {
    const float xr = t[w[i] & mask];
    const float xi = t[(w[i] >> cbits) & mask];
    const float dr = yr - xr, di = yi - xi;
    oc[i] += dr * dr + di * di;
  }
}

/// acc[i] = |y - x(w[i])|^2: the store form of awgn_accum for the
/// first symbol (0 + x == x exactly, so this equals zero-fill + add).
static inline void awgn_accum0(const std::uint32_t* w, std::size_t count,
                               const float* table, std::uint32_t mask, int cbits,
                               float yr, float yi, float* acc) noexcept {
  const float* const __restrict t = table;
  float* const __restrict oc = acc;
  for (std::size_t i = 0; i < count; ++i) {
    const float xr = t[w[i] & mask];
    const float xi = t[(w[i] >> cbits) & mask];
    const float dr = yr - xr, di = yi - xi;
    oc[i] = dr * dr + di * di;
  }
}

/// One symbol's RNG draw + AWGN l2 accumulation. Split passes (hash
/// into @p w, then accumulate) so both loops auto-vectorize; lane
/// semantics exactly match hash_premixed_n/hash_n + awgn_accum.
/// Explicit-SIMD backends fuse the passes instead.
static inline void awgn_sweep(hash::Kind kind, std::uint32_t salt, bool premixed,
                              const std::uint32_t* lanes, std::size_t count,
                              std::uint32_t data, const float* table,
                              std::uint32_t mask, int cbits, float yr, float yi,
                              std::uint32_t* w, float* acc) noexcept {
  if (premixed)
    hash_premixed_n(lanes, count, data, w);
  else
    hash_n(kind, salt, lanes, count, data, w);
  awgn_accum(w, count, table, mask, cbits, yr, yi, acc);
}

/// First-symbol variant of awgn_sweep: *stores* the metric instead of
/// accumulating, replacing the zero-fill + add round-trip.
static inline void awgn_sweep0(hash::Kind kind, std::uint32_t salt, bool premixed,
                               const std::uint32_t* lanes, std::size_t count,
                               std::uint32_t data, const float* table,
                               std::uint32_t mask, int cbits, float yr, float yi,
                               std::uint32_t* w, float* acc) noexcept {
  if (premixed)
    hash_premixed_n(lanes, count, data, w);
  else
    hash_n(kind, salt, lanes, count, data, w);
  awgn_accum0(w, count, table, mask, cbits, yr, yi, acc);
}

/// acc[i] += |y - h·x(w[i])|^2 (coherent CSI metric, §8.3).
static inline void awgn_csi_accum(const std::uint32_t* w, std::size_t count,
                                  const float* table, std::uint32_t mask, int cbits,
                                  float yr, float yi, float hr, float hi,
                                  float* acc) noexcept {
  const float* const __restrict t = table;
  float* const __restrict oc = acc;
  for (std::size_t i = 0; i < count; ++i) {
    const float xr = t[w[i] & mask];
    const float xi = t[(w[i] >> cbits) & mask];
    const float rr = hr * xr - hi * xi;
    const float ri = hr * xi + hi * xr;
    const float dr = yr - rr, di = yi - ri;
    oc[i] += dr * dr + di * di;
  }
}

/// CSI + fixed point: h·x quantised to the Appendix-B grid in-kernel.
static inline void awgn_csi_fx_accum(const std::uint32_t* w, std::size_t count,
                                     const float* table, std::uint32_t mask, int cbits,
                                     float yr, float yi, float hr, float hi,
                                     float fx_scale, float* acc) noexcept {
  const float* const __restrict t = table;
  float* const __restrict oc = acc;
  for (std::size_t i = 0; i < count; ++i) {
    const float xr = t[w[i] & mask];
    const float xi = t[(w[i] >> cbits) & mask];
    const float rr = fx_quantise(hr * xr - hi * xi, fx_scale);
    const float ri = fx_quantise(hr * xi + hi * xr, fx_scale);
    const float dr = yr - rr, di = yi - ri;
    oc[i] += dr * dr + di * di;
  }
}

/// acc[i] |= (w[i] & 1) << j — gathers one coded bit per child into the
/// packed 64-symbol accumulator.
static inline void bsc_gather_bit(const std::uint32_t* w, std::size_t count,
                                  std::uint32_t j, std::uint64_t* acc) noexcept {
  std::uint64_t* const __restrict a = acc;
  for (std::size_t i = 0; i < count; ++i)
    a[i] |= static_cast<std::uint64_t>(w[i] & 1u) << j;
}

/// costs[i] += popcount(acc[i] ^ rx_word) — the Hamming metric per
/// 64-symbol block (small exact integers, so float addition is exact).
static inline void bsc_hamming_add(const std::uint64_t* acc, std::size_t count,
                                   std::uint64_t rx_word, float* costs) noexcept {
  float* const __restrict oc = costs;
  for (std::size_t i = 0; i < count; ++i)
    oc[i] += static_cast<float>(__builtin_popcountll(acc[i] ^ rx_word));
}

/// keys[i] = monotone_key(costs[i]) << 32 | i.
static inline void build_keys(const float* costs, std::size_t count,
                              std::uint64_t* keys) noexcept {
  for (std::size_t i = 0; i < count; ++i)
    keys[i] = (static_cast<std::uint64_t>(monotone_key(costs[i])) << 32) |
              static_cast<std::uint32_t>(i);
}

/// Streaming fused d=1 finalize+prune (see Backend::d1_prune): one
/// sweep over a child-major expansion block that appends only the
/// candidates whose monotone cost clears the running bound. Whole rows
/// short-circuit on the parent cost (children cost at least the
/// parent: child_cost >= 0 by contract).
static inline std::size_t d1_prune(const float* parent_cost, const float* child_cost,
                                   std::size_t count, std::uint32_t fanout,
                                   std::uint32_t cand_base, std::uint64_t bound_key,
                                   std::uint64_t* out_keys) noexcept {
  std::size_t sc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const float pc = parent_cost[i];
    // Every child key >= (monotone(pc) << 32): row skip on the parent.
    if ((static_cast<std::uint64_t>(monotone_key(pc)) << 32) > bound_key) continue;
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; ++v) {
      const float cost = pc + child_cost[row + v];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(monotone_key(cost)) << 32) |
          (cand_base + static_cast<std::uint32_t>(row + v));
      // Branchless append (prune outcomes are data-random, poison for
      // the predictor): always write, advance on survival. The slot
      // past the last survivor is scratch — hence the contract's
      // out_keys slack.
      out_keys[sc] = key;
      sc += key <= bound_key;
    }
  }
  return sc;
}

/// Partial-cost survivor compression for the fused streaming expansion
/// (see Backend::awgn_expand_prune): children whose parent + partial
/// metric already exceeds the bound leave the pipeline. Survivor lanes
/// of acc and lanes compact in place (front-packed, order preserved —
/// write index never passes read index) and idx_out records each
/// survivor's child index. Returns the survivor count.
static inline std::size_t partial_compress(const float* parent_cost, float* acc,
                                           std::size_t count, std::uint32_t fanout,
                                           std::uint64_t bound_key, std::uint32_t* lanes,
                                           std::uint32_t* idx_out) noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const float pc = parent_cost[i];
    if ((static_cast<std::uint64_t>(monotone_key(pc)) << 32) > bound_key)
      continue;  // costs only grow
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; ++v) {
      const std::size_t c = row + v;
      // Branchless compaction: the write cursor trails the read index,
      // so unconditional writes are self-overwriting, never clobbering.
      acc[n] = acc[c];
      lanes[n] = lanes[c];
      idx_out[n] = static_cast<std::uint32_t>(c);
      // Partial key (block-local index low word) <= final key, so this
      // admits every candidate the full-cost filter would keep.
      const std::uint64_t pkey =
          (static_cast<std::uint64_t>(monotone_key(pc + acc[n])) << 32) |
          static_cast<std::uint32_t>(c);
      n += pkey <= bound_key;
    }
  }
  return n;
}

/// Final key build over the compressed survivor lanes (see
/// Backend::awgn_expand_prune): finalizes cost = parent + metric with
/// the exact scalar expression, filters against the bound once more
/// (partial survivors can still lose on the full cost) and appends
/// packed keys in candidate order.
static inline std::size_t final_prune(const float* parent_cost, const float* acc,
                                      const std::uint32_t* idx, std::size_t n,
                                      int log2_fanout, std::uint32_t cand_base,
                                      std::uint64_t bound_key,
                                      std::uint64_t* out_keys) noexcept {
  std::size_t sc = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const float cost = parent_cost[idx[j] >> log2_fanout] + acc[j];
    const std::uint64_t key = (static_cast<std::uint64_t>(monotone_key(cost)) << 32) |
                              (cand_base + idx[j]);
    out_keys[sc] = key;
    sc += key <= bound_key;  // branchless append, see d1_prune
  }
  return sc;
}

/// Per-leaf row minima folded with the parent cost (see
/// Backend::row_mins). The running strict-less min over the row in v
/// order is the reference semantics SIMD backends must match.
static inline void row_mins(const float* leaf_cost, const float* child_cost,
                            std::size_t leaves, std::uint32_t fanout,
                            float* out) noexcept {
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    float m = child_cost[row];
    for (std::uint32_t v = 1; v < fanout; ++v)
      if (child_cost[row + v] < m) m = child_cost[row + v];
    out[i] = leaf_cost[i] + m;
  }
}

/// Survivor-group row emit (see Backend::regroup_emit): the scalar
/// reference for the vectorized d>1 regroup. Kernel-local fill
/// counters reproduce the old scatter's leaf-major fill order.
static inline void regroup_emit(const std::uint32_t* child_state, const float* child_cost,
                                const float* leaf_cost, const std::uint32_t* leaf_path,
                                std::size_t leaves, std::uint32_t fanout, int k, int d,
                                std::uint32_t group_mask,
                                const std::int32_t* group_rowbase, std::uint32_t* out_state,
                                float* out_cost, std::uint32_t* out_path) noexcept {
  std::uint32_t next[256];  // group_count <= 2^k <= 256 (CodeParams)
  const std::uint32_t group_count = group_mask + 1;
  for (std::uint32_t g = 0; g < group_count; ++g)
    next[g] = group_rowbase[g] < 0 ? 0 : static_cast<std::uint32_t>(group_rowbase[g]);
  const int shift = k * (d - 2);
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::uint32_t g = leaf_path[i] & group_mask;
    if (group_rowbase[g] < 0) continue;
    const float pc = leaf_cost[i];
    const std::uint32_t pbase = leaf_path[i] >> k;
    const std::size_t src = i * static_cast<std::size_t>(fanout);
    const std::size_t dst = next[g];
    next[g] += fanout;
    for (std::uint32_t v = 0; v < fanout; ++v) {
      out_state[dst + v] = child_state[src + v];
      out_cost[dst + v] = pc + child_cost[src + v];
      out_path[dst + v] = pbase | (v << shift);
    }
  }
}

/// Dense GF(2) row combine (see Backend::xor_rows): dst ^= src over
/// 64-bit words. Word-at-a-time is the reference semantics; SIMD
/// backends widen the stride but XOR is exact, so outputs are
/// bit-identical by construction.
static inline void xor_rows(std::uint64_t* dst, const std::uint64_t* src,
                            std::size_t words) noexcept {
  for (std::size_t w = 0; w < words; ++w) dst[w] ^= src[w];
}

// --- Quantized (u16/u8-grid) kernels ----------------------------------
// Integer mirrors of the float kernels above. The channel metric is a
// pre-tabulated combined re+im integer (AwgnLevelQ::qtab), so one
// symbol's per-child work is a gather plus an add; costs are
// min(sum, 65535) everywhere (quant_sat_add chains ≡ plain u32 sums
// clamped once, since every table entry is <= 65535 and nsym is
// bounded far below 2^16). All pure integer: SIMD lanes are trivially
// bit-identical, so these loops are both the reference semantics and
// the conformance oracle for the *_u16 backend entries.

static inline std::uint32_t quant_clamp(std::uint32_t sum) noexcept {
  return sum > 65535u ? 65535u : sum;
}

/// acc[i] += qtab[w[i] & qmask] — the quantized metric accumulation.
static inline void awgn_q_accum(const std::uint32_t* w, std::size_t count,
                                const std::uint16_t* qtab, std::uint32_t qmask,
                                std::uint32_t* acc) noexcept {
  const std::uint16_t* const __restrict t = qtab;
  std::uint32_t* const __restrict oc = acc;
  for (std::size_t i = 0; i < count; ++i) oc[i] += t[w[i] & qmask];
}

/// Store form of awgn_q_accum for the first symbol.
static inline void awgn_q_accum0(const std::uint32_t* w, std::size_t count,
                                 const std::uint16_t* qtab, std::uint32_t qmask,
                                 std::uint32_t* acc) noexcept {
  const std::uint16_t* const __restrict t = qtab;
  std::uint32_t* const __restrict oc = acc;
  for (std::size_t i = 0; i < count; ++i) oc[i] = t[w[i] & qmask];
}

/// One symbol's RNG draw + quantized metric accumulation (split passes
/// so both loops auto-vectorize, exactly as awgn_sweep).
static inline void awgn_q_sweep(hash::Kind kind, std::uint32_t salt, bool premixed,
                                const std::uint32_t* lanes, std::size_t count,
                                std::uint32_t data, const std::uint16_t* qtab,
                                std::uint32_t qmask, std::uint32_t* w,
                                std::uint32_t* acc) noexcept {
  if (premixed)
    hash_premixed_n(lanes, count, data, w);
  else
    hash_n(kind, salt, lanes, count, data, w);
  awgn_q_accum(w, count, qtab, qmask, acc);
}

/// First-symbol variant of awgn_q_sweep (stores instead of accumulating).
static inline void awgn_q_sweep0(hash::Kind kind, std::uint32_t salt, bool premixed,
                                 const std::uint32_t* lanes, std::size_t count,
                                 std::uint32_t data, const std::uint16_t* qtab,
                                 std::uint32_t qmask, std::uint32_t* w,
                                 std::uint32_t* acc) noexcept {
  if (premixed)
    hash_premixed_n(lanes, count, data, w);
  else
    hash_n(kind, salt, lanes, count, data, w);
  awgn_q_accum0(w, count, qtab, qmask, acc);
}

/// Quantized d1_prune (see Backend::d1_prune_u16): u16 child metrics,
/// u32 quant_key appends, same branchless-append and row-skip shapes.
static inline std::size_t d1_prune_u16(const std::uint16_t* parent_cost,
                                       const std::uint16_t* child_cost,
                                       std::size_t count, std::uint32_t fanout,
                                       std::uint32_t cand_base, std::uint32_t bound_key,
                                       std::uint32_t* out_keys) noexcept {
  std::size_t sc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t pc = parent_cost[i];
    // Saturating adds are monotone: every child key >= quant_key(pc, 0).
    if ((pc << 16) > bound_key) continue;
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; ++v) {
      const std::uint32_t cost = quant_clamp(pc + child_cost[row + v]);
      const std::uint32_t key =
          (cost << 16) | (cand_base + static_cast<std::uint32_t>(row + v));
      out_keys[sc] = key;
      sc += key <= bound_key;
    }
  }
  return sc;
}

/// Full-width quantized finalize over the uncompressed u32 accumulator
/// (the fused pipeline's keep-everything / single-symbol exit, where no
/// partial compress ran): cost = clamp(parent + acc[c]) per candidate.
static inline std::size_t d1_finalize_q(const std::uint16_t* parent_cost,
                                        const std::uint32_t* acc, std::size_t count,
                                        std::uint32_t fanout, std::uint32_t cand_base,
                                        std::uint32_t bound_key,
                                        std::uint32_t* out_keys) noexcept {
  std::size_t sc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t pc = parent_cost[i];
    if ((pc << 16) > bound_key) continue;
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; ++v) {
      const std::uint32_t cost = quant_clamp(pc + acc[row + v]);
      const std::uint32_t key =
          (cost << 16) | (cand_base + static_cast<std::uint32_t>(row + v));
      out_keys[sc] = key;
      sc += key <= bound_key;
    }
  }
  return sc;
}

/// Quantized partial-cost survivor compression (see
/// Backend::awgn_expand_prune_u16). Sharper than the float twin thanks
/// to the pre-tabulated metric floors: rows skip before any metric
/// work when even parent + row_floor (the guaranteed whole-level
/// minimum, min_rest[0]) exceeds the bound, and each lane's partial
/// key adds lane_rest (min_rest[1], the floor of the unswept symbols).
/// Both floors are admissible — the final cost can only be larger.
static inline std::size_t partial_compress_u16(const std::uint16_t* parent_cost,
                                               std::uint32_t* acc, std::size_t count,
                                               std::uint32_t fanout,
                                               std::uint32_t row_floor,
                                               std::uint32_t lane_rest,
                                               std::uint32_t bound_key,
                                               std::uint32_t* lanes,
                                               std::uint32_t* idx_out) noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t pc = parent_cost[i];
    if ((quant_clamp(pc + row_floor) << 16) > bound_key) continue;
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; ++v) {
      const std::size_t c = row + v;
      acc[n] = acc[c];
      lanes[n] = lanes[c];
      idx_out[n] = static_cast<std::uint32_t>(c);
      const std::uint32_t pkey = (quant_clamp(pc + acc[n] + lane_rest) << 16) |
                                 static_cast<std::uint32_t>(c);
      n += pkey <= bound_key;
    }
  }
  return n;
}

/// Quantized final key build over compressed survivor lanes.
/// @p parent32 is the block's parent costs widened to u32 by the
/// driver (so SIMD backends gather with plain 32-bit gathers).
static inline std::size_t final_prune_u16(const std::uint32_t* parent32,
                                          const std::uint32_t* acc,
                                          const std::uint32_t* idx, std::size_t n,
                                          int log2_fanout, std::uint32_t cand_base,
                                          std::uint32_t bound_key,
                                          std::uint32_t* out_keys) noexcept {
  std::size_t sc = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t cost = quant_clamp(parent32[idx[j] >> log2_fanout] + acc[j]);
    const std::uint32_t key = (cost << 16) | (cand_base + idx[j]);
    out_keys[sc] = key;
    sc += key <= bound_key;
  }
  return sc;
}

/// Quantized row_mins: unsigned min is order-free and the saturating
/// fold is monotone, so clamp(leaf + min_v row) equals the running
/// min over clamped per-child costs exactly.
static inline void row_mins_u16(const std::uint16_t* leaf_cost,
                                const std::uint16_t* child_cost, std::size_t leaves,
                                std::uint32_t fanout, std::uint16_t* out) noexcept {
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    std::uint32_t m = child_cost[row];
    for (std::uint32_t v = 1; v < fanout; ++v)
      if (child_cost[row + v] < m) m = child_cost[row + v];
    out[i] = static_cast<std::uint16_t>(quant_clamp(leaf_cost[i] + m));
  }
}

/// Quantized regroup_emit: same move/order contract as regroup_emit
/// with saturating cost folds.
static inline void regroup_emit_u16(const std::uint32_t* child_state,
                                    const std::uint16_t* child_cost,
                                    const std::uint16_t* leaf_cost,
                                    const std::uint32_t* leaf_path, std::size_t leaves,
                                    std::uint32_t fanout, int k, int d,
                                    std::uint32_t group_mask,
                                    const std::int32_t* group_rowbase,
                                    std::uint32_t* out_state, std::uint16_t* out_cost,
                                    std::uint32_t* out_path) noexcept {
  std::uint32_t next[256];  // group_count <= 2^k <= 256 (CodeParams)
  const std::uint32_t group_count = group_mask + 1;
  for (std::uint32_t g = 0; g < group_count; ++g)
    next[g] = group_rowbase[g] < 0 ? 0 : static_cast<std::uint32_t>(group_rowbase[g]);
  const int shift = k * (d - 2);
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::uint32_t g = leaf_path[i] & group_mask;
    if (group_rowbase[g] < 0) continue;
    const std::uint32_t pc = leaf_cost[i];
    const std::uint32_t pbase = leaf_path[i] >> k;
    const std::size_t src = i * static_cast<std::size_t>(fanout);
    const std::size_t dst = next[g];
    next[g] += fanout;
    for (std::uint32_t v = 0; v < fanout; ++v) {
      out_state[dst + v] = child_state[src + v];
      out_cost[dst + v] = static_cast<std::uint16_t>(quant_clamp(pc + child_cost[src + v]));
      out_path[dst + v] = pbase | (v << shift);
    }
  }
}

}  // namespace spinal::backend::scalar
