// SSE4.2 backend: 4 uint32 lanes. This TU (and only this TU) is
// compiled with -msse4.2; the registry only hands the table out after
// CPUID confirms the CPU supports it.

#include "backend/backends_impl.h"

#if defined(__SSE4_2__)

#include "backend/expand.h"
#include "backend/simd_kernels.h"
#include "backend/vec_x86.h"

namespace spinal::backend {
namespace {
using Ops = simd::SimdOps<simd::Vec128>;
}  // namespace

const Backend* sse42_backend() noexcept {
  static const Backend b{
      "sse42",
      4,
      Ops::hash_n,
      Ops::hash_children,
      Ops::premix_n,
      Ops::hash_premixed_n,
      awgn_expand_all_t<Ops>,
      bsc_expand_all_t<Ops>,
      awgn_expand_prune_t<Ops>,
      shared_build_keys,
      Ops::d1_prune,
      Ops::row_mins,
      Ops::regroup_emit,
      shared_partition_keys,
      shared_select_keys,
      Ops::xor_rows,
      awgn_expand_all_u16_t<Ops>,
      awgn_expand_prune_u16_t<Ops>,
      Ops::d1_prune_u16,
      Ops::row_mins_u16,
      Ops::regroup_emit_u16,
      shared_partition_keys_u32,
      shared_select_keys_u32,
  };
  return &b;
}

}  // namespace spinal::backend

#endif  // __SSE4_2__
