#pragma once
// Runtime-dispatched SIMD kernel backends for the bubble-decoder hot
// path (§7's hardware discussion: wide-beam decoding must be as fast as
// the machine allows). One kernel contract, several implementations:
//
//   scalar  — portable C++, the retained reference implementation;
//   sse42   — x86 SSE4.2 intrinsics, 4 lanes (compile- and CPUID-gated);
//   avx2    — x86 AVX2 intrinsics, 8 lanes (compile- and CPUID-gated);
//   neon    — ARM NEON intrinsics, 4 lanes (compile-time gated; ASIMD is
//             architectural on aarch64, auxval-probed on 32-bit ARM).
//
// Every backend is *bit-identical* to the scalar kernels: the hash
// lanes are pure integer ops, and the float cost metrics keep the same
// expression shapes and the same per-lane reduction order (symbols
// accumulate sequentially per lane; lanes never sum across each other),
// compiled under the same -ffp-contract=off discipline. The PR 2 golden
// suite (test_decoder_golden) therefore acts as the conformance oracle
// for all of them, and test_backend checks the kernels pairwise.
//
// Selection: the best available backend is chosen at first use via
// CPUID (x86) / hwcaps (ARM). The SPINAL_BACKEND environment variable
// overrides it by name; an unknown name warns on stderr and falls back
// to the detected best. force() switches at runtime (tests, benches).
// Switching backends while another thread is decoding is a data race —
// pick the backend before spinning up decode threads.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "hash/spine_hash.h"

namespace spinal::backend {

/// Order-preserving float-to-integer map: monotone_key(a) < monotone_key(b)
/// iff a < b for all non-NaN floats (with -0 ordered just below +0, which
/// cannot matter here: candidate costs that tie at zero are both +0).
/// Lets the B-of-N selection run on flat uint64 (key << 32 | index) values
/// instead of an indirect float comparator — same (cost, index) order,
/// including the index tie-break, at a fraction of the compare cost.
inline std::uint32_t monotone_key(float f) noexcept {
  const std::uint32_t b = std::bit_cast<std::uint32_t>(f);
  return (b & 0x80000000u) ? ~b : (b | 0x80000000u);
}

/// Per-decode scratch the fused expansion kernels use, grown to steady
/// state by the *caller* before the kernel call (resize-only, so
/// repeated decodes stay allocation-free; owned by the decoder's
/// DecodeWorkspace). The kernels receive raw pointers — no std::vector
/// method is ever instantiated inside a SIMD-flagged translation unit,
/// which would risk a vague-linkage copy with wide instructions being
/// picked for baseline CPUs.
struct ExpandScratch {
  std::vector<std::uint32_t> rng_words;  ///< per-child RNG draw scratch
  std::vector<std::uint32_t> premix;     ///< per-child hash pre-mix (shared across symbols)
  std::vector<std::uint64_t> acc_bits;   ///< per-child coded-bit accumulator (BSC)
};

/// Everything the fused AWGN expansion kernel needs for one spine level:
/// hash family, this level's received symbols (SoA slices), channel
/// mode, constellation tables, and caller-sized scratch (count * fanout
/// lanes each; premix_scratch may be null when the hash kind does not
/// factor or fewer than two symbols landed on the level).
struct AwgnLevel {
  hash::Kind kind;
  std::uint32_t salt;
  const std::uint32_t* ord;  ///< symbol ordinals, nsym entries
  std::uint32_t nsym;
  const float* y_re;
  const float* y_im;
  const float* h_re;  ///< CSI, valid when use_csi
  const float* h_im;
  bool use_csi;
  float fx_scale;  ///< > 0: Appendix-B fixed-point grid 2^frac_bits
  const float* table;      ///< constellation (pre-quantised in fx mode)
  const float* raw_table;  ///< unquantised (CSI path quantises after h·x)
  std::uint32_t mask;
  int cbits;
  std::uint32_t* rng_scratch;     ///< per-child RNG draws
  std::uint32_t* premix_scratch;  ///< shared pre-mix, or nullptr
};

/// One spine level of the BSC kernel: ordinals plus the received bits
/// packed 64 per word (bit j of word j/64), and caller-sized scratch.
struct BscLevel {
  hash::Kind kind;
  std::uint32_t salt;
  const std::uint32_t* ord;
  std::uint32_t nsym;
  const std::uint64_t* rx_words;
  std::uint32_t* rng_scratch;
  std::uint32_t* premix_scratch;  ///< shared pre-mix, or nullptr
  std::uint64_t* acc_scratch;     ///< packed coded-bit accumulator
};

/// The kernel table: one entry per hot-path primitive. All function
/// pointers are always non-null. Results are bit-identical across
/// backends (the contract test_backend/test_decoder_golden enforce).
struct Backend {
  const char* name;  ///< registry key: "scalar", "sse42", "avx2", "neon"
  int lanes;         ///< uint32 lanes per vector (1 for scalar)

  /// out[i] = h(states[i], data), the batched spine hash.
  void (*hash_n)(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
                 std::size_t count, std::uint32_t data, std::uint32_t* out);

  /// out[i*fanout + v] = h(states[i], v) for v < fanout, child-major:
  /// a leaf's children are contiguous, so at bubble depth d=1 the
  /// kernel output *is* the candidate order (cand = leaf*fanout + v)
  /// and the search needs no scatter at all. The one-at-a-time state
  /// pre-mix is still shared across the fanout.
  void (*hash_children)(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
                        std::size_t count, std::uint32_t fanout, std::uint32_t* out);

  /// One-at-a-time state pre-mix (kind-specific: only valid for the
  /// factoring kind, see SpineHash::has_premix).
  void (*premix_n)(std::uint32_t salt, const std::uint32_t* states, std::size_t count,
                   std::uint32_t* out);

  /// Finishes h for lanes pre-mixed by premix_n.
  void (*hash_premixed_n)(const std::uint32_t* premixed, std::size_t count,
                          std::uint32_t data, std::uint32_t* out);

  /// Fused per-level expansion: children of the whole leaf array plus
  /// the accumulated channel metric per child (AWGN: l2 against the
  /// constellation, with optional CSI and fixed-point quantisation).
  void (*awgn_expand_all)(const AwgnLevel& level, const std::uint32_t* states,
                          std::size_t count, std::uint32_t fanout,
                          std::uint32_t* out_states, float* out_costs);

  /// Fused per-level expansion, BSC Hamming metric (XOR + popcount over
  /// 64-symbol packed blocks).
  void (*bsc_expand_all)(const BscLevel& level, const std::uint32_t* states,
                         std::size_t count, std::uint32_t fanout,
                         std::uint32_t* out_states, float* out_costs);

  /// keys[i] = monotone_key(costs[i]) << 32 | i — the packed B-of-N
  /// selection keys.
  void (*build_keys)(const float* costs, std::size_t count, std::uint64_t* keys);

  /// Fused d=1 candidate finalize over the child-major kernel output:
  ///   cand_cost[i*fanout + v] = parent_cost[i] + child_cost[i*fanout + v]
  ///   keys[c] = monotone_key(cand_cost[c]) << 32 | c
  /// The single float add keeps the exact scalar expression
  /// (parent + node_cost); keys land in candidate order.
  void (*d1_keys)(const float* parent_cost, const float* child_cost, std::size_t count,
                  std::uint32_t fanout, float* cand_cost, std::uint64_t* keys);

  /// Reorders keys so the keep smallest occupy [0, keep) in ascending
  /// order (the kept *set* and its *order* are deterministic; the tail
  /// order is unspecified). Precondition: keep <= count.
  void (*select_keys)(std::uint64_t* keys, std::size_t count, std::size_t keep);

  /// Batched RNG of §7.1 (domain-separated hash, see SpineHash::rng).
  void rng_n(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
             std::size_t count, std::uint32_t index, std::uint32_t* out) const {
    hash_n(kind, salt, states, count, index ^ 0x80000000u, out);
  }
};

/// Backends compiled in *and* supported by this CPU, detection order
/// (scalar first, widest last). Never empty: scalar is always present.
const std::vector<const Backend*>& available() noexcept;

/// The backend every decode routes through. First call resolves the
/// SPINAL_BACKEND override (unknown names warn on stderr) and otherwise
/// picks the last — widest — entry of available().
const Backend& active() noexcept;

/// Looks a backend up by registry name; nullptr when absent.
const Backend* find(std::string_view name) noexcept;

/// Switches active() to the named backend. Returns false (and leaves
/// the active backend unchanged) when the name is not in available().
bool force(std::string_view name) noexcept;

/// The pure resolution rule behind active()'s first call, exposed for
/// tests: empty/unset requests the detected best; an unknown name sets
/// *warned and falls back to the best. Does not touch active().
const Backend* resolve(std::string_view env_value, bool* warned) noexcept;

}  // namespace spinal::backend
