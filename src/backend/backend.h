#pragma once
// Runtime-dispatched SIMD kernel backends for the bubble-decoder hot
// path (§7's hardware discussion: wide-beam decoding must be as fast as
// the machine allows). One kernel contract, several implementations:
//
//   scalar  — portable C++, the retained reference implementation;
//   sse42   — x86 SSE4.2 intrinsics, 4 lanes (compile- and CPUID-gated);
//   avx2    — x86 AVX2 intrinsics, 8 lanes (compile- and CPUID-gated);
//   neon    — ARM NEON intrinsics, 4 lanes (compile-time gated; ASIMD is
//             architectural on aarch64, auxval-probed on 32-bit ARM).
//
// Every backend is *bit-identical* to the scalar kernels: the hash
// lanes are pure integer ops, and the float cost metrics keep the same
// expression shapes and the same per-lane reduction order (symbols
// accumulate sequentially per lane; lanes never sum across each other),
// compiled under the same -ffp-contract=off discipline. The PR 2 golden
// suite (test_decoder_golden) therefore acts as the conformance oracle
// for all of them, and test_backend checks the kernels pairwise.
//
// Selection: the best available backend is chosen at first use via
// CPUID (x86) / hwcaps (ARM). The SPINAL_BACKEND environment variable
// overrides it by name; an unknown name warns on stderr and falls back
// to the detected best. force() switches at runtime (tests, benches).
// Switching backends while another thread is decoding is a data race —
// pick the backend before spinning up decode threads.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hash/spine_hash.h"

namespace spinal::backend {

/// Order-preserving float-to-integer map: monotone_key(a) < monotone_key(b)
/// iff a < b for all non-NaN floats (with -0 ordered just below +0, which
/// cannot matter here: candidate costs that tie at zero are both +0).
/// Lets the B-of-N selection run on flat uint64 (key << 32 | index) values
/// instead of an indirect float comparator — same (cost, index) order,
/// including the index tie-break, at a fraction of the compare cost.
inline std::uint32_t monotone_key(float f) noexcept {
  const std::uint32_t b = std::bit_cast<std::uint32_t>(f);
  return (b & 0x80000000u) ? ~b : (b | 0x80000000u);
}

/// Exact inverse of monotone_key: the map is a bijection on bit
/// patterns, so a float cost round-trips through its packed selection
/// key bit-for-bit. The streaming pipeline uses this to recover kept
/// candidate costs from survivor keys instead of materializing a
/// full candidate-cost array.
inline float inverse_monotone_key(std::uint32_t m) noexcept {
  const std::uint32_t b = (m & 0x80000000u) ? (m & 0x7FFFFFFFu) : ~m;
  return std::bit_cast<float>(b);
}

/// Per-decode scratch the fused expansion kernels use, grown to steady
/// state by the *caller* before the kernel call (resize-only, so
/// repeated decodes stay allocation-free; owned by the decoder's
/// DecodeWorkspace). The kernels receive raw pointers — no std::vector
/// method is ever instantiated inside a SIMD-flagged translation unit,
/// which would risk a vague-linkage copy with wide instructions being
/// picked for baseline CPUs.
struct ExpandScratch {
  std::vector<std::uint32_t> rng_words;  ///< per-child RNG draw scratch
  std::vector<std::uint32_t> premix;     ///< per-child hash pre-mix / compacted RNG lanes
  std::vector<std::uint64_t> acc_bits;   ///< per-child coded-bit accumulator (BSC)
  std::vector<float> acc;                ///< per-child metric accumulator (streaming AWGN)
  std::vector<std::uint32_t> idx;        ///< partial-prune survivor child indices
  std::vector<std::uint32_t> acc_q;      ///< quantized per-child metric accumulator
};

/// Everything the fused AWGN expansion kernel needs for one spine level:
/// hash family, this level's received symbols (SoA slices), channel
/// mode, constellation tables, and caller-sized scratch (count * fanout
/// lanes each; premix_scratch may be null when the hash kind does not
/// factor or fewer than two symbols landed on the level).
struct AwgnLevel {
  hash::Kind kind;
  std::uint32_t salt;
  const std::uint32_t* ord;  ///< symbol ordinals, nsym entries
  std::uint32_t nsym;
  const float* y_re;
  const float* y_im;
  const float* h_re;  ///< CSI, valid when use_csi
  const float* h_im;
  bool use_csi;
  float fx_scale;  ///< > 0: Appendix-B fixed-point grid 2^frac_bits
  const float* table;      ///< constellation (pre-quantised in fx mode)
  const float* raw_table;  ///< unquantised (CSI path quantises after h·x)
  std::uint32_t mask;
  int cbits;
  std::uint32_t* rng_scratch;     ///< per-child RNG draws
  std::uint32_t* premix_scratch;  ///< shared pre-mix, or nullptr
  // The streaming awgn_expand_prune kernel additionally needs (both
  // may be null for plain awgn_expand_all calls):
  float* acc_scratch;          ///< per-child metric accumulator
  std::uint32_t* idx_scratch;  ///< partial-cost survivor child indices
};

/// Everything the *quantized* (u16/u8 grid, see spinal/cost_model.h)
/// AWGN expansion kernels need for one spine level. The channel metric
/// is fully pre-tabulated: qtab row s holds the combined re+im integer
/// metric of symbol s for every 2^(2c) constellation index pair, so a
/// kernel's per-child work per symbol is one RNG draw, one gather
/// (qtab[w & qmask]) and one add. Entries are clamped to the
/// precision's cap (<= 65535) and a path cost is min(sum, 65535)
/// everywhere — exactly a u16 saturating-add chain, carried in u32
/// lanes so survivor compaction reuses the u32 compress stores.
struct AwgnLevelQ {
  hash::Kind kind;
  std::uint32_t salt;
  const std::uint32_t* ord;  ///< symbol ordinals, nsym entries
  std::uint32_t nsym;
  const std::uint16_t* qtab;      ///< nsym rows of qstride combined metrics
                                  ///< (u16 entries — 8 KiB per row at c=6, so
                                  ///< a level's rows sit in L1; the table must
                                  ///< carry one u16 of tail slack for the
                                  ///< 32-bit SIMD gather of the last entry)
  std::uint32_t qstride;          ///< 1 << (2*cbits)
  std::uint32_t qmask;            ///< qstride - 1 (index = rng_word & qmask)
  const std::uint16_t* min_rest;  ///< nsym+1 suffix sums of per-row minima
                                  ///< (min_rest[s] = sat sum of rows >= s,
                                  ///< min_rest[nsym] = 0): admissible
                                  ///< remaining-symbol floors for pruning
  std::uint32_t* rng_scratch;     ///< per-child RNG draws
  std::uint32_t* premix_scratch;  ///< shared pre-mix, or nullptr
  std::uint32_t* acc_scratch;     ///< per-child quantized metric accumulator
  std::uint32_t* idx_scratch;     ///< partial-cost survivor child indices
};

/// Packs a quantized cost (<= 65535) and candidate index (< 65536 —
/// the quantized path requires B*2^k <= 65536) into the u32 selection
/// key the *_u16 kernels and partition/select_keys_u32 operate on.
/// Integer costs are their own monotone key, so unlike the f32 path
/// there is no bit trick to undo: cost = key >> 16, cand = key & 0xFFFF.
inline std::uint32_t quant_key(std::uint32_t cost, std::uint32_t cand) noexcept {
  return (cost << 16) | cand;
}

/// Saturating u16 add on u32 carriers: min(a + b, 65535). With
/// non-negative operands a chain of these equals min(plain sum, 65535),
/// so kernels may accumulate in plain u32 and clamp once at the end —
/// bit-identical to a per-step saturating u16 chain.
inline std::uint32_t quant_sat_add(std::uint32_t a, std::uint32_t b) noexcept {
  const std::uint32_t s = a + b;
  return s > 65535u ? 65535u : s;
}

/// One spine level of the BSC kernel: ordinals plus the received bits
/// packed 64 per word (bit j of word j/64), and caller-sized scratch.
struct BscLevel {
  hash::Kind kind;
  std::uint32_t salt;
  const std::uint32_t* ord;
  std::uint32_t nsym;
  const std::uint64_t* rx_words;
  std::uint32_t* rng_scratch;
  std::uint32_t* premix_scratch;  ///< shared pre-mix, or nullptr
  std::uint64_t* acc_scratch;     ///< packed coded-bit accumulator
};

/// The kernel table: one entry per hot-path primitive. All function
/// pointers are always non-null. Results are bit-identical across
/// backends (the contract test_backend/test_decoder_golden enforce).
struct Backend {
  const char* name;  ///< registry key: "scalar", "sse42", "avx2", "neon"
  int lanes;         ///< uint32 lanes per vector (1 for scalar)

  /// out[i] = h(states[i], data), the batched spine hash.
  void (*hash_n)(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
                 std::size_t count, std::uint32_t data, std::uint32_t* out);

  /// out[i*fanout + v] = h(states[i], v) for v < fanout, child-major:
  /// a leaf's children are contiguous, so at bubble depth d=1 the
  /// kernel output *is* the candidate order (cand = leaf*fanout + v)
  /// and the search needs no scatter at all. The one-at-a-time state
  /// pre-mix is still shared across the fanout.
  void (*hash_children)(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
                        std::size_t count, std::uint32_t fanout, std::uint32_t* out);

  /// One-at-a-time state pre-mix (kind-specific: only valid for the
  /// factoring kind, see SpineHash::has_premix).
  void (*premix_n)(std::uint32_t salt, const std::uint32_t* states, std::size_t count,
                   std::uint32_t* out);

  /// Finishes h for lanes pre-mixed by premix_n.
  void (*hash_premixed_n)(const std::uint32_t* premixed, std::size_t count,
                          std::uint32_t data, std::uint32_t* out);

  /// Fused per-level expansion: children of the whole leaf array plus
  /// the accumulated channel metric per child (AWGN: l2 against the
  /// constellation, with optional CSI and fixed-point quantisation).
  void (*awgn_expand_all)(const AwgnLevel& level, const std::uint32_t* states,
                          std::size_t count, std::uint32_t fanout,
                          std::uint32_t* out_states, float* out_costs);

  /// Fused per-level expansion, BSC Hamming metric (XOR + popcount over
  /// 64-symbol packed blocks).
  void (*bsc_expand_all)(const BscLevel& level, const std::uint32_t* states,
                         std::size_t count, std::uint32_t fanout,
                         std::uint32_t* out_states, float* out_costs);

  /// The streaming d=1 pipeline head: child hashing, RNG draws, the
  /// per-symbol AWGN metric sweeps AND the online prune fused into one
  /// kernel over a leaf block. After the first symbol's accumulation,
  /// children whose *partial* cost (parent + first-symbol metric;
  /// metrics only grow, so this is admissible) already exceeds bound_key
  /// leave the pipeline: the survivor lanes compress and the remaining
  /// nsym-1 hash+metric sweeps run over the compressed set only —
  /// losing children never get their costs finished, let alone written
  /// back. Appends survivor keys exactly as d1_prune does (same packed
  /// contract, same slack requirement) and returns the count; all
  /// child states still land in out_states (the writeback reads kept
  /// states by candidate index). level.acc_scratch, level.idx_scratch,
  /// level.rng_scratch and level.premix_scratch must all be non-null
  /// and sized count*fanout. Bit-identity: each surviving child's
  /// metric accumulates in the same per-lane order as awgn_expand_all,
  /// so results equal awgn_expand_all + d1_prune exactly
  /// (test_backend pins this).
  std::size_t (*awgn_expand_prune)(const AwgnLevel& level, const std::uint32_t* states,
                                   const float* parent_cost, std::size_t count,
                                   std::uint32_t fanout, std::uint32_t cand_base,
                                   std::uint64_t bound_key, std::uint32_t* out_states,
                                   std::uint64_t* out_keys);

  /// keys[i] = monotone_key(costs[i]) << 32 | i — the packed B-of-N
  /// selection keys.
  void (*build_keys)(const float* costs, std::size_t count, std::uint64_t* keys);

  /// Streaming fused d=1 finalize+prune over one child-major expansion
  /// block (the streaming pipeline that retired the old
  /// materialize-then-select d1_keys contract). For every candidate
  /// c = i*fanout + v of the block,
  ///   cost = parent_cost[i] + child_cost[c]   (the exact scalar shape)
  /// and the candidate is *discarded* — never written anywhere — when
  /// its full packed key exceeds bound_key, the running B-th-best
  /// *key* (cost word and candidate-index tie-break together) the
  /// search maintains — so even exact cost ties past the bound prune,
  /// which is where integer (Hamming) metrics put most of their
  /// candidates. Survivors append in candidate order, exactly the
  /// packed keys the old full build produced:
  ///   out_keys[j] = monotone_key(cost) << 32 | (cand_base + c)
  /// so the survivor set is a filtered subset of the historical key
  /// array and every downstream selection/tie-break is unchanged.
  /// Returns the number appended. Whole rows short-circuit on the
  /// parent cost (children cost at least the parent). Preconditions:
  /// child_cost >= 0 (channel metrics are non-negative; pruning leans
  /// on cost monotonicity along paths) and no cost is -0.0f. Pass
  /// bound_key = ~0ull to keep everything. out_keys needs 7 slots of
  /// slack past the worst-case append count: SIMD backends
  /// compress-store whole vectors.
  std::size_t (*d1_prune)(const float* parent_cost, const float* child_cost,
                          std::size_t count, std::uint32_t fanout,
                          std::uint32_t cand_base, std::uint64_t bound_key,
                          std::uint64_t* out_keys);

  /// d>1 regroup, phase 1: per-leaf row minima folded with the parent
  /// cost, out[i] = leaf_cost[i] + min_v child_cost[i*fanout + v].
  /// Exact: float min is order-free and x + min(row) equals
  /// min_v (x + row[v]) bit-for-bit (addition is monotone), so the
  /// value matches the scalar running-min over finalized child costs.
  /// Preconditions as for d1_prune (no -0.0f, finite costs).
  void (*row_mins)(const float* leaf_cost, const float* child_cost, std::size_t leaves,
                   std::uint32_t fanout, float* out);

  /// d>1 regroup, phase 2: copies the *surviving* groups' child rows of
  /// one entry into the survivor arena — the vectorized replacement for
  /// the old scalar regroup scatter. Every child of leaf i belongs to
  /// group g = leaf_path[i] & group_mask (the chunk value at path slot
  /// 0), so rows move whole: for each leaf in order, when
  /// group_rowbase[g] >= 0 the row lands at the group's next free arena
  /// rows as
  ///   out_state[dst + v] = child_state[i*fanout + v]
  ///   out_cost[dst + v]  = leaf_cost[i] + child_cost[i*fanout + v]
  ///   out_path[dst + v]  = (leaf_path[i] >> k) | v << (k*(d-2))
  /// reproducing the scalar fill order (leaf-major, children
  /// contiguous) and float expressions exactly. group_rowbase[g] is the
  /// arena element offset of group g's candidate record, or -1 when the
  /// group was pruned (nothing of it is written at all).
  void (*regroup_emit)(const std::uint32_t* child_state, const float* child_cost,
                       const float* leaf_cost, const std::uint32_t* leaf_path,
                       std::size_t leaves, std::uint32_t fanout, int k, int d,
                       std::uint32_t group_mask, const std::int32_t* group_rowbase,
                       std::uint32_t* out_state, float* out_cost,
                       std::uint32_t* out_path);

  /// Moves the keep smallest keys into [0, keep) in *unspecified*
  /// order (the kept set is deterministic; no order inside or outside
  /// it is). The streaming pipeline's mid-level bound refinements run
  /// this over the survivor buffer — the keep-th-best bound needs the
  /// set, never the order, and the final select re-sorts anyway.
  void (*partition_keys)(std::uint64_t* keys, std::size_t count, std::size_t keep);

  /// Reorders keys so the keep smallest occupy [0, keep) in ascending
  /// order (the kept *set* and its *order* are deterministic; the tail
  /// order is unspecified). Precondition: keep <= count. In the
  /// streaming pipeline this runs block-locally: over the survivor
  /// buffer once per level at the end, never over the full B·2^k
  /// candidate set.
  void (*select_keys)(std::uint64_t* keys, std::size_t count, std::size_t keep);

  /// GF(2) dense row combine: dst[w] ^= src[w] for w < words. The
  /// kernel table's first non-spinal client — Raptor's LT + LDGM
  /// precode row operations accumulate packed parity rows through it.
  /// dst and src must not overlap. Pure integer XOR, so every backend
  /// is trivially bit-identical.
  void (*xor_rows)(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t words);

  // --- Quantized (u16/u8-grid) kernel family ---------------------------
  // Integer mirrors of the AWGN expand/prune/regroup contract above.
  // Costs are u16-saturating (min(sum, 65535) everywhere), selection
  // keys are u32 quant_key(cost, cand) values, and every kernel is pure
  // integer — bit-identical across backends by construction, which is
  // the conformance contract test_backend and the forced-u16 golden
  // runs enforce (quantized vs f32 is gated statistically instead, see
  // spinal/cost_model.h).

  /// Quantized awgn_expand_all: out_costs[c] = min(sum of per-symbol
  /// table metrics, 65535) per child, u16. Needs level.rng_scratch and
  /// level.acc_scratch sized count*fanout (premix_scratch when the hash
  /// kind factors and nsym > 1).
  void (*awgn_expand_all_u16)(const AwgnLevelQ& level, const std::uint32_t* states,
                              std::size_t count, std::uint32_t fanout,
                              std::uint32_t* out_states, std::uint16_t* out_costs);

  /// Quantized streaming fused expand+prune, the integer twin of
  /// awgn_expand_prune: same pipeline (hash children, sweep symbol 0,
  /// compress partial-cost survivors, finish the remaining sweeps on
  /// survivors only), same survivor-key append contract with u32 keys
  /// (7 slots of slack). Two integer-only extras sharpen the admissible
  /// bounds: whole rows skip *before any hashing* when
  /// quant_key(parent + min_rest[0], 0) > bound_key, and the partial
  /// compress adds min_rest[1] (the guaranteed remaining-symbol floor)
  /// to each lane's partial cost. Pass bound_key = UINT32_MAX to keep
  /// everything.
  std::size_t (*awgn_expand_prune_u16)(const AwgnLevelQ& level,
                                       const std::uint32_t* states,
                                       const std::uint16_t* parent_cost,
                                       std::size_t count, std::uint32_t fanout,
                                       std::uint32_t cand_base, std::uint32_t bound_key,
                                       std::uint32_t* out_states,
                                       std::uint32_t* out_keys);

  /// Quantized d1_prune: cost = min(parent + child, 65535), key =
  /// quant_key(cost, cand_base + c), append iff key <= bound_key.
  /// Same row short-circuit and slack contract as d1_prune.
  std::size_t (*d1_prune_u16)(const std::uint16_t* parent_cost,
                              const std::uint16_t* child_cost, std::size_t count,
                              std::uint32_t fanout, std::uint32_t cand_base,
                              std::uint32_t bound_key, std::uint32_t* out_keys);

  /// Quantized row_mins: out[i] = min(leaf_cost[i] + min_v child, 65535).
  void (*row_mins_u16)(const std::uint16_t* leaf_cost, const std::uint16_t* child_cost,
                       std::size_t leaves, std::uint32_t fanout, std::uint16_t* out);

  /// Quantized regroup_emit: identical move/order contract to
  /// regroup_emit with out_cost[dst+v] = min(leaf + child, 65535).
  void (*regroup_emit_u16)(const std::uint32_t* child_state,
                           const std::uint16_t* child_cost, const std::uint16_t* leaf_cost,
                           const std::uint32_t* leaf_path, std::size_t leaves,
                           std::uint32_t fanout, int k, int d, std::uint32_t group_mask,
                           const std::int32_t* group_rowbase, std::uint32_t* out_state,
                           std::uint16_t* out_cost, std::uint32_t* out_path);

  /// partition_keys over u32 quantized keys (same set-only contract).
  void (*partition_keys_u32)(std::uint32_t* keys, std::size_t count, std::size_t keep);

  /// select_keys over u32 quantized keys: keep smallest ascending in
  /// [0, keep). u32 keys order exactly by (cost, cand), so ascending
  /// key order *is* the deterministic tie-broken candidate order.
  void (*select_keys_u32)(std::uint32_t* keys, std::size_t count, std::size_t keep);

  /// Batched RNG of §7.1 (domain-separated hash, see SpineHash::rng).
  void rng_n(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
             std::size_t count, std::uint32_t index, std::uint32_t* out) const {
    hash_n(kind, salt, states, count, index ^ 0x80000000u, out);
  }
};

/// Backends compiled in *and* supported by this CPU, detection order
/// (scalar first, widest last). Never empty: scalar is always present.
const std::vector<const Backend*>& available() noexcept;

/// The backend every decode routes through. First call resolves the
/// SPINAL_BACKEND override (unknown names warn on stderr) and otherwise
/// picks the last — widest — entry of available().
const Backend& active() noexcept;

/// Looks a backend up by registry name; nullptr when absent.
const Backend* find(std::string_view name) noexcept;

/// Switches active() to the named backend. Returns false (and leaves
/// the active backend unchanged) when the name is not in available().
bool force(std::string_view name) noexcept;

/// The pure resolution rule behind active()'s first call, exposed for
/// tests: empty/unset requests the detected best; an unknown name sets
/// *warned, prints the available-backend list to stderr (so a typo'd
/// SPINAL_BACKEND tells the user what the valid names are) and falls
/// back to the best. Does not touch active().
const Backend* resolve(std::string_view env_value, bool* warned) noexcept;

/// Space-separated names of every available backend, in detection
/// order — the list resolve() prints on an unknown name.
std::string available_names();

}  // namespace spinal::backend
