#pragma once
// ARM NEON vector wrapper for the generic SIMD kernels (simd_kernels.h):
// 4 uint32 lanes. aarch64 only — the fixed-point path needs FRINTI
// (round to integral, current mode) and FDIV, both A64 instructions;
// 32-bit ARM falls back to the scalar backend.

#include <cstddef>
#include <cstdint>

#if defined(__aarch64__)
#include <arm_neon.h>

namespace spinal::backend::simd {

struct VecNeon {
  static constexpr std::size_t W = 4;
  /// Lane compression falls back to scalar extraction (see vec_x86.h).
  static constexpr bool kFastCompress = false;
  using U = uint32x4_t;
  using F = float32x4_t;

  static U loadu(const std::uint32_t* p) { return vld1q_u32(p); }
  static void storeu(std::uint32_t* p, U v) { vst1q_u32(p, v); }
  static U set1(std::uint32_t x) { return vdupq_n_u32(x); }
  static U add(U a, U b) { return vaddq_u32(a, b); }
  static U sub(U a, U b) { return vsubq_u32(a, b); }
  static U xor_(U a, U b) { return veorq_u32(a, b); }
  static U and_(U a, U b) { return vandq_u32(a, b); }
  static U or_(U a, U b) { return vorrq_u32(a, b); }
  static U shl(U a, int n) { return vshlq_u32(a, vdupq_n_s32(n)); }
  static U shr(U a, int n) { return vshlq_u32(a, vdupq_n_s32(-n)); }
  static U sar(U a, int n) {
    return vreinterpretq_u32_s32(vshlq_s32(vreinterpretq_s32_u32(a), vdupq_n_s32(-n)));
  }
  static U iota() {
    static const std::uint32_t k[4] = {0, 1, 2, 3};
    return vld1q_u32(k);
  }

  static F loadf(const float* p) { return vld1q_f32(p); }
  static void storef(float* p, F v) { vst1q_f32(p, v); }
  static F set1f(float x) { return vdupq_n_f32(x); }
  static F addf(F a, F b) { return vaddq_f32(a, b); }
  static F subf(F a, F b) { return vsubq_f32(a, b); }
  static F mulf(F a, F b) { return vmulq_f32(a, b); }
  static F divf(F a, F b) { return vdivq_f32(a, b); }
  static F roundf_cur(F a) { return vrndiq_f32(a); }  // FRINTI: current mode
  static U castfu(F a) { return vreinterpretq_u32_f32(a); }
  static F minf(F a, F b) { return vminq_f32(a, b); }

  /// Bitmask of lanes where a > b, both unsigned (NEON compares
  /// unsigned natively; lanes collapse to bits via a weighted add).
  static unsigned gtu_mask(U a, U b) {
    static const std::uint32_t w[4] = {1, 2, 4, 8};
    return vaddvq_u32(vandq_u32(vcgtq_u32(a, b), vld1q_u32(w)));
  }

  /// dst[l] = (uint64)m[l] << 32 | idx[l], in lane order.
  static void zip_store_keys(std::uint64_t* dst, U idx, U m) {
    const uint32x4x2_t z = vzipq_u32(idx, m);
    vst1q_u32(reinterpret_cast<std::uint32_t*>(dst), z.val[0]);
    vst1q_u32(reinterpret_cast<std::uint32_t*>(dst) + 4, z.val[1]);
  }

  /// Appends the surviving lanes' (m << 32 | idx) keys to dst in lane
  /// order (lane l survives when bit l of keep_mask is set); returns
  /// the count. May write up to W slots regardless of the count.
  static std::size_t compress_store_keys(std::uint64_t* dst, U idx, U m,
                                         unsigned keep_mask) {
    std::uint32_t ib[4], mb[4];
    vst1q_u32(ib, idx);
    vst1q_u32(mb, m);
    std::size_t n = 0;
    for (unsigned l = 0; l < 4; ++l) {
      dst[n] = (static_cast<std::uint64_t>(mb[l]) << 32) | ib[l];
      n += (keep_mask >> l) & 1u;  // branchless append
    }
    return n;
  }

  /// Appends the surviving lanes of v to dst in lane order; returns the
  /// count. May write up to W slots regardless of the count.
  static std::size_t compress_store_u32(std::uint32_t* dst, U v, unsigned keep_mask) {
    std::uint32_t b[4];
    vst1q_u32(b, v);
    std::size_t n = 0;
    for (unsigned l = 0; l < 4; ++l) {
      dst[n] = b[l];
      n += (keep_mask >> l) & 1u;  // branchless append
    }
    return n;
  }

  // No gather instruction: extract indices, scalar loads.
  static F gather(const float* t, U idx) {
    float v[4] = {t[vgetq_lane_u32(idx, 0)], t[vgetq_lane_u32(idx, 1)],
                  t[vgetq_lane_u32(idx, 2)], t[vgetq_lane_u32(idx, 3)]};
    return vld1q_f32(v);
  }

  static U gather_u32(const std::uint32_t* t, U idx) {
    std::uint32_t v[4] = {t[vgetq_lane_u32(idx, 0)], t[vgetq_lane_u32(idx, 1)],
                          t[vgetq_lane_u32(idx, 2)], t[vgetq_lane_u32(idx, 3)]};
    return vld1q_u32(v);
  }

  /// Gather of u16 table entries, zero-extended to u32 lanes.
  static U gather_u16(const std::uint16_t* t, U idx) {
    std::uint32_t v[4] = {t[vgetq_lane_u32(idx, 0)], t[vgetq_lane_u32(idx, 1)],
                          t[vgetq_lane_u32(idx, 2)], t[vgetq_lane_u32(idx, 3)]};
    return vld1q_u32(v);
  }

  static U min_u32(U a, U b) { return vminq_u32(a, b); }

  /// Zero-extends W uint16 values to uint32 lanes.
  static U widen_load_u16(const std::uint16_t* p) { return vmovl_u16(vld1_u16(p)); }

  /// Truncating narrow store of W uint32 lanes (each <= 65535) to uint16.
  static void narrow_store_u16(std::uint16_t* p, U v) { vst1_u16(p, vmovn_u32(v)); }

  /// acc[0..3] |= (w & 1) << j, widening the four uint32 lanes to
  /// uint64 in two halves.
  static void gather_bits(std::uint64_t* acc, U w, std::uint32_t j) {
    const U bits = vandq_u32(w, vdupq_n_u32(1));
    const uint64x2_t lo = vmovl_u32(vget_low_u32(bits));
    const uint64x2_t hi = vmovl_u32(vget_high_u32(bits));
    const int64x2_t jv = vdupq_n_s64(static_cast<std::int64_t>(j));
    uint64x2_t a0 = vld1q_u64(acc);
    uint64x2_t a1 = vld1q_u64(acc + 2);
    a0 = vorrq_u64(a0, vshlq_u64(lo, jv));
    a1 = vorrq_u64(a1, vshlq_u64(hi, jv));
    vst1q_u64(acc, a0);
    vst1q_u64(acc + 2, a1);
  }
};

}  // namespace spinal::backend::simd

#endif  // __aarch64__
