#pragma once
// x86 vector wrappers for the generic SIMD kernels (simd_kernels.h):
// Vec128 (SSE4.2, 4 uint32 lanes) and Vec256 (AVX2, 8 lanes). Each is
// only visible inside a TU compiled with the matching -m flags; the
// rest of the build never sees an intrinsic.
//
// Float ops are plain IEEE single mul/sub/add/div (never FMA — the
// kernels' bit-identity contract) and the fixed-point round uses the
// current-rounding-direction form of ROUNDPS, matching nearbyintf.

#include <cstddef>
#include <cstdint>

#if defined(__SSE4_2__) || defined(__AVX2__)
#include <immintrin.h>

namespace spinal::backend::simd {

#if defined(__SSE4_2__)
struct Vec128 {
  static constexpr std::size_t W = 4;
  /// Lane compression falls back to scalar extraction here; kernels
  /// that only profit from branchless compress gate on this.
  static constexpr bool kFastCompress = false;
  using U = __m128i;
  using F = __m128;

  static U loadu(const std::uint32_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu(std::uint32_t* p, U v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static U set1(std::uint32_t x) { return _mm_set1_epi32(static_cast<int>(x)); }
  static U add(U a, U b) { return _mm_add_epi32(a, b); }
  static U sub(U a, U b) { return _mm_sub_epi32(a, b); }
  static U xor_(U a, U b) { return _mm_xor_si128(a, b); }
  static U and_(U a, U b) { return _mm_and_si128(a, b); }
  static U or_(U a, U b) { return _mm_or_si128(a, b); }
  static U shl(U a, int n) { return _mm_slli_epi32(a, n); }
  static U shr(U a, int n) { return _mm_srli_epi32(a, n); }
  static U sar(U a, int n) { return _mm_srai_epi32(a, n); }
  static U iota() { return _mm_setr_epi32(0, 1, 2, 3); }

  static F loadf(const float* p) { return _mm_loadu_ps(p); }
  static void storef(float* p, F v) { _mm_storeu_ps(p, v); }
  static F set1f(float x) { return _mm_set1_ps(x); }
  static F addf(F a, F b) { return _mm_add_ps(a, b); }
  static F subf(F a, F b) { return _mm_sub_ps(a, b); }
  static F mulf(F a, F b) { return _mm_mul_ps(a, b); }
  static F divf(F a, F b) { return _mm_div_ps(a, b); }
  static F roundf_cur(F a) { return _mm_round_ps(a, _MM_FROUND_CUR_DIRECTION); }
  static U castfu(F a) { return _mm_castps_si128(a); }
  static F minf(F a, F b) { return _mm_min_ps(a, b); }

  /// Bitmask of lanes where a > b, both treated as unsigned (SSE has
  /// only signed compares: flip the sign bit of both operands first).
  static unsigned gtu_mask(U a, U b) {
    const U sign = _mm_set1_epi32(static_cast<int>(0x80000000u));
    const U gt = _mm_cmpgt_epi32(_mm_xor_si128(a, sign), _mm_xor_si128(b, sign));
    return static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(gt)));
  }

  /// dst[l] = (uint64)m[l] << 32 | idx[l], in lane order.
  static void zip_store_keys(std::uint64_t* dst, U idx, U m) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), _mm_unpacklo_epi32(idx, m));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 2), _mm_unpackhi_epi32(idx, m));
  }

  /// Appends the surviving lanes' (m << 32 | idx) keys to dst in lane
  /// order (lane l survives when bit l of keep_mask is set); returns
  /// the count. May write up to W slots regardless of the count.
  static std::size_t compress_store_keys(std::uint64_t* dst, U idx, U m,
                                         unsigned keep_mask) {
    alignas(16) std::uint32_t ib[4], mb[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(ib), idx);
    _mm_store_si128(reinterpret_cast<__m128i*>(mb), m);
    std::size_t n = 0;
    for (unsigned l = 0; l < 4; ++l) {
      dst[n] = (static_cast<std::uint64_t>(mb[l]) << 32) | ib[l];
      n += (keep_mask >> l) & 1u;  // branchless append
    }
    return n;
  }

  /// Appends the surviving lanes of v to dst in lane order; returns the
  /// count. May write up to W slots regardless of the count.
  static std::size_t compress_store_u32(std::uint32_t* dst, U v, unsigned keep_mask) {
    alignas(16) std::uint32_t b[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(b), v);
    std::size_t n = 0;
    for (unsigned l = 0; l < 4; ++l) {
      dst[n] = b[l];
      n += (keep_mask >> l) & 1u;  // branchless append
    }
    return n;
  }

  // SSE has no gather instruction: extract indices, scalar loads.
  static F gather(const float* t, U idx) {
    alignas(16) std::uint32_t i[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(i), idx);
    return _mm_setr_ps(t[i[0]], t[i[1]], t[i[2]], t[i[3]]);
  }

  static U gather_u32(const std::uint32_t* t, U idx) {
    alignas(16) std::uint32_t i[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(i), idx);
    return _mm_setr_epi32(static_cast<int>(t[i[0]]), static_cast<int>(t[i[1]]),
                          static_cast<int>(t[i[2]]), static_cast<int>(t[i[3]]));
  }

  /// Gather of u16 table entries, zero-extended to u32 lanes.
  static U gather_u16(const std::uint16_t* t, U idx) {
    alignas(16) std::uint32_t i[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(i), idx);
    return _mm_setr_epi32(t[i[0]], t[i[1]], t[i[2]], t[i[3]]);
  }

  static U min_u32(U a, U b) { return _mm_min_epu32(a, b); }

  /// Zero-extends W uint16 values to uint32 lanes.
  static U widen_load_u16(const std::uint16_t* p) {
    return _mm_cvtepu16_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  }

  /// Truncating narrow store of W uint32 lanes (each <= 65535) to uint16.
  static void narrow_store_u16(std::uint16_t* p, U v) {
    _mm_storel_epi64(reinterpret_cast<__m128i*>(p), _mm_packus_epi32(v, v));
  }

  /// acc[0..3] |= (w & 1) << j, widening the four uint32 lanes to
  /// uint64.
  static void gather_bits(std::uint64_t* acc, U w, std::uint32_t j) {
    const U bits = _mm_and_si128(w, _mm_set1_epi32(1));
    const __m128i lo = _mm_cvtepu32_epi64(bits);
    const __m128i hi = _mm_cvtepu32_epi64(_mm_srli_si128(bits, 8));
    __m128i a0 = _mm_loadu_si128(reinterpret_cast<__m128i*>(acc));
    __m128i a1 = _mm_loadu_si128(reinterpret_cast<__m128i*>(acc + 2));
    a0 = _mm_or_si128(a0, _mm_slli_epi64(lo, static_cast<int>(j)));
    a1 = _mm_or_si128(a1, _mm_slli_epi64(hi, static_cast<int>(j)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc), a0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + 2), a1);
  }
};
#endif  // __SSE4_2__

#if defined(__AVX2__)
/// Mask-indexed lane-compression permutation table for Vec256's
/// compress stores: entry [mask] lists the surviving lane indices in
/// lane order, zero-padded. Computed at compile time — no per-call
/// magic-static guard in the innermost prune loops.
inline constexpr struct CompressLut256 {
  std::uint32_t perm[256][8];
} kCompressLut256 = [] {
  CompressLut256 t{};
  for (unsigned mask = 0; mask < 256; ++mask) {
    unsigned n = 0;
    for (unsigned l = 0; l < 8; ++l)
      if (mask & (1u << l)) t.perm[mask][n++] = l;
    for (; n < 8; ++n) t.perm[mask][n] = 0;
  }
  return t;
}();

struct Vec256 {
  static constexpr std::size_t W = 8;
  static constexpr bool kFastCompress = true;
  using U = __m256i;
  using F = __m256;

  static U loadu(const std::uint32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu(std::uint32_t* p, U v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static U set1(std::uint32_t x) { return _mm256_set1_epi32(static_cast<int>(x)); }
  static U add(U a, U b) { return _mm256_add_epi32(a, b); }
  static U sub(U a, U b) { return _mm256_sub_epi32(a, b); }
  static U xor_(U a, U b) { return _mm256_xor_si256(a, b); }
  static U and_(U a, U b) { return _mm256_and_si256(a, b); }
  static U or_(U a, U b) { return _mm256_or_si256(a, b); }
  static U shl(U a, int n) { return _mm256_slli_epi32(a, n); }
  static U shr(U a, int n) { return _mm256_srli_epi32(a, n); }
  static U sar(U a, int n) { return _mm256_srai_epi32(a, n); }
  static U iota() { return _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7); }

  static F loadf(const float* p) { return _mm256_loadu_ps(p); }
  static void storef(float* p, F v) { _mm256_storeu_ps(p, v); }
  static F set1f(float x) { return _mm256_set1_ps(x); }
  static F addf(F a, F b) { return _mm256_add_ps(a, b); }
  static F subf(F a, F b) { return _mm256_sub_ps(a, b); }
  static F mulf(F a, F b) { return _mm256_mul_ps(a, b); }
  static F divf(F a, F b) { return _mm256_div_ps(a, b); }
  static F roundf_cur(F a) { return _mm256_round_ps(a, _MM_FROUND_CUR_DIRECTION); }
  static U castfu(F a) { return _mm256_castps_si256(a); }
  static F minf(F a, F b) { return _mm256_min_ps(a, b); }

  /// Bitmask of lanes where a > b, both treated as unsigned.
  static unsigned gtu_mask(U a, U b) {
    const U sign = _mm256_set1_epi32(static_cast<int>(0x80000000u));
    const U gt = _mm256_cmpgt_epi32(_mm256_xor_si256(a, sign), _mm256_xor_si256(b, sign));
    return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(gt)));
  }

  /// dst[l] = (uint64)m[l] << 32 | idx[l], in lane order (unpack works
  /// per 128-bit half, so the halves are re-zipped with permute2x128).
  static void zip_store_keys(std::uint64_t* dst, U idx, U m) {
    const __m256i lo = _mm256_unpacklo_epi32(idx, m);  // keys 0,1 | 4,5
    const __m256i hi = _mm256_unpackhi_epi32(idx, m);  // keys 2,3 | 6,7
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                        _mm256_permute2x128_si256(lo, hi, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4),
                        _mm256_permute2x128_si256(lo, hi, 0x31));
  }

  static F gather(const float* t, U idx) { return _mm256_i32gather_ps(t, idx, 4); }

  static U gather_u32(const std::uint32_t* t, U idx) {
    return _mm256_i32gather_epi32(reinterpret_cast<const int*>(t), idx, 4);
  }

  /// Gather of u16 table entries, zero-extended to u32 lanes. The
  /// 32-bit gather at scale 2 reads two bytes past entry idx, so the
  /// table owner must pad one u16 of slack after the last entry
  /// (AwgnLevelQ::qtab's contract).
  static U gather_u16(const std::uint16_t* t, U idx) {
    const __m256i wide =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(t), idx, 2);
    return _mm256_and_si256(wide, _mm256_set1_epi32(0xFFFF));
  }

  static U min_u32(U a, U b) { return _mm256_min_epu32(a, b); }

  /// Zero-extends W uint16 values to uint32 lanes.
  static U widen_load_u16(const std::uint16_t* p) {
    return _mm256_cvtepu16_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }

  /// Truncating narrow store of W uint32 lanes (each <= 65535) to
  /// uint16. PACKUSDW packs per 128-bit half, so the halves are put
  /// back in lane order with a 64-bit permute before the low half
  /// stores.
  static void narrow_store_u16(std::uint16_t* p, U v) {
    const __m256i packed =
        _mm256_permute4x64_epi64(_mm256_packus_epi32(v, v), 0xD8);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p),
                     _mm256_castsi256_si128(packed));
  }

  /// Appends the surviving lanes' (m << 32 | idx) keys to dst in lane
  /// order (lane l survives when bit l of keep_mask is set); returns
  /// the count. Branchless: both value vectors are compressed through a
  /// mask-indexed permute table, then two full vectors store blindly —
  /// dst needs W-1 slots of slack past the true append count.
  static std::size_t compress_store_keys(std::uint64_t* dst, U idx, U m,
                                         unsigned keep_mask) {
    const __m256i perm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kCompressLut256.perm[keep_mask]));
    zip_store_keys(dst, _mm256_permutevar8x32_epi32(idx, perm),
                   _mm256_permutevar8x32_epi32(m, perm));
    return static_cast<std::size_t>(__builtin_popcount(keep_mask));
  }

  /// Appends the surviving lanes of v to dst in lane order (branchless
  /// permute compress); returns the count. May write a full vector of
  /// slack regardless of the count.
  static std::size_t compress_store_u32(std::uint32_t* dst, U v, unsigned keep_mask) {
    const __m256i perm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kCompressLut256.perm[keep_mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                        _mm256_permutevar8x32_epi32(v, perm));
    return static_cast<std::size_t>(__builtin_popcount(keep_mask));
  }

  /// acc[0..7] |= (w & 1) << j, widening the eight uint32 lanes to
  /// uint64 in two halves.
  static void gather_bits(std::uint64_t* acc, U w, std::uint32_t j) {
    const U bits = _mm256_and_si256(w, _mm256_set1_epi32(1));
    const __m256i lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(bits));
    const __m256i hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(bits, 1));
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(acc));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(acc + 4));
    a0 = _mm256_or_si256(a0, _mm256_slli_epi64(lo, static_cast<int>(j)));
    a1 = _mm256_or_si256(a1, _mm256_slli_epi64(hi, static_cast<int>(j)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 4), a1);
  }
};
#endif  // __AVX2__

}  // namespace spinal::backend::simd

#endif  // __SSE4_2__ || __AVX2__
