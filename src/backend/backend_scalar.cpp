// The portable scalar backend: the pre-backend-layer hot-path code,
// moved behind the kernel table. Always compiled, always available —
// it is both the fallback on feature-poor CPUs and the bit-identity
// reference the SIMD backends are tested against.

#include "backend/backends_impl.h"
#include "backend/expand.h"
#include "backend/scalar_kernels.h"

namespace spinal::backend {
namespace {

struct ScalarOps {
  static void hash_n(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
                     std::size_t count, std::uint32_t data, std::uint32_t* out) {
    scalar::hash_n(kind, salt, states, count, data, out);
  }
  static void hash_children(hash::Kind kind, std::uint32_t salt,
                            const std::uint32_t* states, std::size_t count,
                            std::uint32_t fanout, std::uint32_t* out) {
    scalar::hash_children(kind, salt, states, count, fanout, out);
  }
  static void premix_n(std::uint32_t salt, const std::uint32_t* states,
                       std::size_t count, std::uint32_t* out) {
    scalar::premix_n(salt, states, count, out);
  }
  static void hash_premixed_n(const std::uint32_t* premixed, std::size_t count,
                              std::uint32_t data, std::uint32_t* out) {
    scalar::hash_premixed_n(premixed, count, data, out);
  }
  static void awgn_accum(const std::uint32_t* w, std::size_t count, const float* table,
                         std::uint32_t mask, int cbits, float yr, float yi, float* acc) {
    scalar::awgn_accum(w, count, table, mask, cbits, yr, yi, acc);
  }
  static void awgn_csi_accum(const std::uint32_t* w, std::size_t count,
                             const float* table, std::uint32_t mask, int cbits, float yr,
                             float yi, float hr, float hi, float* acc) {
    scalar::awgn_csi_accum(w, count, table, mask, cbits, yr, yi, hr, hi, acc);
  }
  static void awgn_csi_fx_accum(const std::uint32_t* w, std::size_t count,
                                const float* table, std::uint32_t mask, int cbits,
                                float yr, float yi, float hr, float hi, float fx_scale,
                                float* acc) {
    scalar::awgn_csi_fx_accum(w, count, table, mask, cbits, yr, yi, hr, hi, fx_scale, acc);
  }
  static void bsc_gather_bit(const std::uint32_t* w, std::size_t count, std::uint32_t j,
                             std::uint64_t* acc) {
    scalar::bsc_gather_bit(w, count, j, acc);
  }
  static void bsc_hamming_add(const std::uint64_t* acc, std::size_t count,
                              std::uint64_t rx_word, float* costs) {
    scalar::bsc_hamming_add(acc, count, rx_word, costs);
  }
  static void d1_keys(const float* parent_cost, const float* child_cost,
                      std::size_t count, std::uint32_t fanout, float* cand_cost,
                      std::uint64_t* keys) {
    scalar::d1_keys(parent_cost, child_cost, count, fanout, cand_cost, keys);
  }
};

}  // namespace

const Backend* scalar_backend() noexcept {
  static const Backend b{
      "scalar",
      1,
      ScalarOps::hash_n,
      ScalarOps::hash_children,
      ScalarOps::premix_n,
      ScalarOps::hash_premixed_n,
      awgn_expand_all_t<ScalarOps>,
      bsc_expand_all_t<ScalarOps>,
      shared_build_keys,
      ScalarOps::d1_keys,
      shared_select_keys,
  };
  return &b;
}

}  // namespace spinal::backend
