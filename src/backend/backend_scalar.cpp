// The portable scalar backend: the pre-backend-layer hot-path code,
// moved behind the kernel table. Always compiled, always available —
// it is both the fallback on feature-poor CPUs and the bit-identity
// reference the SIMD backends are tested against.

#include "backend/backends_impl.h"
#include "backend/expand.h"
#include "backend/scalar_kernels.h"

namespace spinal::backend {
namespace {

struct ScalarOps {
  static void hash_n(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
                     std::size_t count, std::uint32_t data, std::uint32_t* out) {
    scalar::hash_n(kind, salt, states, count, data, out);
  }
  static void hash_children(hash::Kind kind, std::uint32_t salt,
                            const std::uint32_t* states, std::size_t count,
                            std::uint32_t fanout, std::uint32_t* out) {
    scalar::hash_children(kind, salt, states, count, fanout, out);
  }
  static void premix_n(std::uint32_t salt, const std::uint32_t* states,
                       std::size_t count, std::uint32_t* out) {
    scalar::premix_n(salt, states, count, out);
  }
  static void hash_premixed_n(const std::uint32_t* premixed, std::size_t count,
                              std::uint32_t data, std::uint32_t* out) {
    scalar::hash_premixed_n(premixed, count, data, out);
  }
  static void awgn_accum(const std::uint32_t* w, std::size_t count, const float* table,
                         std::uint32_t mask, int cbits, float yr, float yi, float* acc) {
    scalar::awgn_accum(w, count, table, mask, cbits, yr, yi, acc);
  }
  static void awgn_csi_accum(const std::uint32_t* w, std::size_t count,
                             const float* table, std::uint32_t mask, int cbits, float yr,
                             float yi, float hr, float hi, float* acc) {
    scalar::awgn_csi_accum(w, count, table, mask, cbits, yr, yi, hr, hi, acc);
  }
  static void awgn_csi_fx_accum(const std::uint32_t* w, std::size_t count,
                                const float* table, std::uint32_t mask, int cbits,
                                float yr, float yi, float hr, float hi, float fx_scale,
                                float* acc) {
    scalar::awgn_csi_fx_accum(w, count, table, mask, cbits, yr, yi, hr, hi, fx_scale, acc);
  }
  static void hash_children_premix(hash::Kind kind, std::uint32_t salt, bool premix,
                                   const std::uint32_t* states, std::size_t count,
                                   std::uint32_t fanout, std::uint32_t* out_states,
                                   std::uint32_t* out_lanes) {
    scalar::hash_children_premix(kind, salt, premix, states, count, fanout, out_states,
                                 out_lanes);
  }
  static void awgn_sweep(hash::Kind kind, std::uint32_t salt, bool premixed,
                         const std::uint32_t* lanes, std::size_t count,
                         std::uint32_t data, const float* table, std::uint32_t mask,
                         int cbits, float yr, float yi, std::uint32_t* w, float* acc) {
    scalar::awgn_sweep(kind, salt, premixed, lanes, count, data, table, mask, cbits,
                       yr, yi, w, acc);
  }
  static void awgn_sweep0(hash::Kind kind, std::uint32_t salt, bool premixed,
                          const std::uint32_t* lanes, std::size_t count,
                          std::uint32_t data, const float* table, std::uint32_t mask,
                          int cbits, float yr, float yi, std::uint32_t* w, float* acc) {
    scalar::awgn_sweep0(kind, salt, premixed, lanes, count, data, table, mask, cbits,
                        yr, yi, w, acc);
  }
  static void bsc_gather_bit(const std::uint32_t* w, std::size_t count, std::uint32_t j,
                             std::uint64_t* acc) {
    scalar::bsc_gather_bit(w, count, j, acc);
  }
  static void bsc_hamming_add(const std::uint64_t* acc, std::size_t count,
                              std::uint64_t rx_word, float* costs) {
    scalar::bsc_hamming_add(acc, count, rx_word, costs);
  }
  static std::size_t d1_prune(const float* parent_cost, const float* child_cost,
                              std::size_t count, std::uint32_t fanout,
                              std::uint32_t cand_base, std::uint64_t bound_key,
                              std::uint64_t* out_keys) {
    return scalar::d1_prune(parent_cost, child_cost, count, fanout, cand_base,
                            bound_key, out_keys);
  }
  static std::size_t partial_compress(const float* parent_cost, float* acc,
                                      std::size_t count, std::uint32_t fanout,
                                      std::uint64_t bound_key, std::uint32_t* lanes,
                                      std::uint32_t* idx_out) {
    return scalar::partial_compress(parent_cost, acc, count, fanout, bound_key, lanes,
                                    idx_out);
  }
  static std::size_t final_prune(const float* parent_cost, const float* acc,
                                 const std::uint32_t* idx, std::size_t n,
                                 int log2_fanout, std::uint32_t cand_base,
                                 std::uint64_t bound_key, std::uint64_t* out_keys) {
    return scalar::final_prune(parent_cost, acc, idx, n, log2_fanout, cand_base,
                               bound_key, out_keys);
  }
  static void row_mins(const float* leaf_cost, const float* child_cost,
                       std::size_t leaves, std::uint32_t fanout, float* out) {
    scalar::row_mins(leaf_cost, child_cost, leaves, fanout, out);
  }
  static void regroup_emit(const std::uint32_t* child_state, const float* child_cost,
                           const float* leaf_cost, const std::uint32_t* leaf_path,
                           std::size_t leaves, std::uint32_t fanout, int k, int d,
                           std::uint32_t group_mask, const std::int32_t* group_rowbase,
                           std::uint32_t* out_state, float* out_cost,
                           std::uint32_t* out_path) {
    scalar::regroup_emit(child_state, child_cost, leaf_cost, leaf_path, leaves, fanout,
                         k, d, group_mask, group_rowbase, out_state, out_cost, out_path);
  }
  static void xor_rows(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t words) {
    scalar::xor_rows(dst, src, words);
  }

  // --- quantized (u16 path metric) policy hooks ---
  static void awgn_q_sweep(hash::Kind kind, std::uint32_t salt, bool premixed,
                           const std::uint32_t* lanes, std::size_t count,
                           std::uint32_t data, const std::uint16_t* qtab,
                           std::uint32_t qmask, std::uint32_t* w, std::uint32_t* acc) {
    scalar::awgn_q_sweep(kind, salt, premixed, lanes, count, data, qtab, qmask, w, acc);
  }
  static void awgn_q_sweep0(hash::Kind kind, std::uint32_t salt, bool premixed,
                            const std::uint32_t* lanes, std::size_t count,
                            std::uint32_t data, const std::uint16_t* qtab,
                            std::uint32_t qmask, std::uint32_t* w, std::uint32_t* acc) {
    scalar::awgn_q_sweep0(kind, salt, premixed, lanes, count, data, qtab, qmask, w, acc);
  }
  static std::size_t d1_prune_u16(const std::uint16_t* parent_cost,
                                  const std::uint16_t* child_cost, std::size_t count,
                                  std::uint32_t fanout, std::uint32_t cand_base,
                                  std::uint32_t bound_key, std::uint32_t* out_keys) {
    return scalar::d1_prune_u16(parent_cost, child_cost, count, fanout, cand_base,
                                bound_key, out_keys);
  }
  static std::size_t d1_finalize_q(const std::uint16_t* parent_cost,
                                   const std::uint32_t* acc, std::size_t count,
                                   std::uint32_t fanout, std::uint32_t cand_base,
                                   std::uint32_t bound_key, std::uint32_t* out_keys) {
    return scalar::d1_finalize_q(parent_cost, acc, count, fanout, cand_base, bound_key,
                                 out_keys);
  }
  static std::size_t partial_compress_u16(const std::uint16_t* parent_cost,
                                          std::uint32_t* acc, std::size_t count,
                                          std::uint32_t fanout, std::uint32_t row_floor,
                                          std::uint32_t lane_rest,
                                          std::uint32_t bound_key, std::uint32_t* lanes,
                                          std::uint32_t* idx_out) {
    return scalar::partial_compress_u16(parent_cost, acc, count, fanout, row_floor,
                                        lane_rest, bound_key, lanes, idx_out);
  }
  static std::size_t final_prune_u16(const std::uint32_t* parent32,
                                     const std::uint32_t* acc, const std::uint32_t* idx,
                                     std::size_t n, int log2_fanout,
                                     std::uint32_t cand_base, std::uint32_t bound_key,
                                     std::uint32_t* out_keys) {
    return scalar::final_prune_u16(parent32, acc, idx, n, log2_fanout, cand_base,
                                   bound_key, out_keys);
  }
  static void row_mins_u16(const std::uint16_t* leaf_cost, const std::uint16_t* child_cost,
                           std::size_t leaves, std::uint32_t fanout, std::uint16_t* out) {
    scalar::row_mins_u16(leaf_cost, child_cost, leaves, fanout, out);
  }
  static void regroup_emit_u16(const std::uint32_t* child_state,
                               const std::uint16_t* child_cost,
                               const std::uint16_t* leaf_cost,
                               const std::uint32_t* leaf_path, std::size_t leaves,
                               std::uint32_t fanout, int k, int d,
                               std::uint32_t group_mask, const std::int32_t* group_rowbase,
                               std::uint32_t* out_state, std::uint16_t* out_cost,
                               std::uint32_t* out_path) {
    scalar::regroup_emit_u16(child_state, child_cost, leaf_cost, leaf_path, leaves,
                             fanout, k, d, group_mask, group_rowbase, out_state, out_cost,
                             out_path);
  }
};

}  // namespace

const Backend* scalar_backend() noexcept {
  static const Backend b{
      "scalar",
      1,
      ScalarOps::hash_n,
      ScalarOps::hash_children,
      ScalarOps::premix_n,
      ScalarOps::hash_premixed_n,
      awgn_expand_all_t<ScalarOps>,
      bsc_expand_all_t<ScalarOps>,
      awgn_expand_prune_t<ScalarOps>,
      shared_build_keys,
      ScalarOps::d1_prune,
      ScalarOps::row_mins,
      ScalarOps::regroup_emit,
      shared_partition_keys,
      shared_select_keys,
      ScalarOps::xor_rows,
      awgn_expand_all_u16_t<ScalarOps>,
      awgn_expand_prune_u16_t<ScalarOps>,
      ScalarOps::d1_prune_u16,
      ScalarOps::row_mins_u16,
      ScalarOps::regroup_emit_u16,
      shared_partition_keys_u32,
      shared_select_keys_u32,
  };
  return &b;
}

}  // namespace spinal::backend
