#pragma once
// Generic SIMD kernels over a vector-of-uint32 abstraction V (see
// vec_x86.h / vec_neon.h for the wrappers). Each kernel runs the main
// loop V::W lanes at a time and finishes the count % W tail with the
// scalar primitive on offset pointers — elementwise kernels make the
// split exact. Bit-identity rules:
//
//  * hash lanes are pure integer ops — identical by construction;
//  * float metrics keep the scalar expression shapes (separate mul and
//    add, never a fused multiply-add: the build also pins
//    -ffp-contract=off in these TUs) and the scalar per-lane reduction
//    order (symbols accumulate sequentially per lane; lanes are
//    independent slots, never summed across);
//  * fixed-point rounding uses the current-rounding-direction round
//    instruction, matching scalar nearbyintf.
//
// Everything here is `static` (internal linkage) and only ever
// instantiated inside the one TU compiled with the matching ISA flags.

#include <cstddef>
#include <cstdint>

#include "backend/scalar_kernels.h"

namespace spinal::backend::simd {

template <class V>
static inline typename V::U rotl_v(typename V::U x, int r) {
  return V::or_(V::shl(x, r), V::shr(x, 32 - r));
}

/// One-at-a-time over one 32-bit word (see hash::one_at_a_time_word).
template <class V>
static inline typename V::U oaat_word_v(typename V::U h, typename V::U word) {
  const typename V::U byte_mask = V::set1(0xFFu);
  for (int b = 0; b < 4; ++b) {
    h = V::add(h, V::and_(V::shr(word, 8 * b), byte_mask));
    h = V::add(h, V::shl(h, 10));
    h = V::xor_(h, V::shr(h, 6));
  }
  h = V::add(h, V::shl(h, 3));
  h = V::xor_(h, V::shr(h, 11));
  h = V::add(h, V::shl(h, 15));
  return h;
}

/// lookup3 final_mix (see jenkins.cpp) on vector lanes.
template <class V>
static inline void final_mix_v(typename V::U& a, typename V::U& b, typename V::U& c) {
  c = V::xor_(c, b); c = V::sub(c, rotl_v<V>(b, 14));
  a = V::xor_(a, c); a = V::sub(a, rotl_v<V>(c, 11));
  b = V::xor_(b, a); b = V::sub(b, rotl_v<V>(a, 25));
  c = V::xor_(c, b); c = V::sub(c, rotl_v<V>(b, 16));
  a = V::xor_(a, c); a = V::sub(a, rotl_v<V>(c, 4));
  b = V::xor_(b, a); b = V::sub(b, rotl_v<V>(a, 14));
  c = V::xor_(c, b); c = V::sub(c, rotl_v<V>(b, 24));
}

/// lookup3_hashword for a (state, data) pair: length 2, so the init
/// value folds (2 << 2) and the switch reduces to b += data; a += state.
/// Both state and data are lane vectors (either may be a broadcast).
template <class V>
static inline typename V::U lookup3_pair_v(typename V::U state, typename V::U data,
                                           std::uint32_t salt) {
  const std::uint32_t init = 0xdeadbeefu + (2u << 2) + salt;
  typename V::U a = V::add(V::set1(init), state);
  typename V::U b = V::add(V::set1(init), data);
  typename V::U c = V::set1(init);
  final_mix_v<V>(a, b, c);
  return c;
}

template <class V>
static inline void salsa_quarter_v(typename V::U& a, typename V::U& b,
                                   typename V::U& c, typename V::U& d) {
  b = V::xor_(b, rotl_v<V>(V::add(a, d), 7));
  c = V::xor_(c, rotl_v<V>(V::add(b, a), 9));
  d = V::xor_(d, rotl_v<V>(V::add(c, b), 13));
  a = V::xor_(a, rotl_v<V>(V::add(d, c), 18));
}

/// Salsa20/20 core on a (state, data, salt) block per lane; returns
/// out[0] ^ out[8] (see salsa20.cpp salsa20_pair). Both state and data
/// are lane vectors (either may be a broadcast).
template <class V>
static inline typename V::U salsa20_pair_v(typename V::U state, typename V::U data,
                                           std::uint32_t salt) {
  using U = typename V::U;
  U in[16];
  in[0] = V::set1(0x61707865u);
  in[1] = state;
  in[2] = data;
  in[3] = V::set1(salt);
  in[4] = V::set1(0x3320646eu);
  in[5] = V::xor_(state, V::set1(0x9E3779B9u));
  in[6] = V::xor_(data, V::set1(0x7F4A7C15u));
  in[7] = V::set1(salt ^ 0x85EBCA6Bu);
  in[8] = V::set1(0x79622d32u);
  in[9] = V::set1(0u);
  in[10] = V::set1(0u);
  in[11] = V::set1(0u);
  in[12] = V::set1(0x6b206574u);
  in[13] = V::add(state, data);
  in[14] = V::add(data, V::set1(salt));
  in[15] = V::add(V::set1(salt), state);

  U x[16];
  for (int i = 0; i < 16; ++i) x[i] = in[i];
  for (int round = 0; round < 20; round += 2) {
    // Column round.
    salsa_quarter_v<V>(x[0], x[4], x[8], x[12]);
    salsa_quarter_v<V>(x[5], x[9], x[13], x[1]);
    salsa_quarter_v<V>(x[10], x[14], x[2], x[6]);
    salsa_quarter_v<V>(x[15], x[3], x[7], x[11]);
    // Row round.
    salsa_quarter_v<V>(x[0], x[1], x[2], x[3]);
    salsa_quarter_v<V>(x[5], x[6], x[7], x[4]);
    salsa_quarter_v<V>(x[10], x[11], x[8], x[9]);
    salsa_quarter_v<V>(x[15], x[12], x[13], x[14]);
  }
  return V::xor_(V::add(x[0], in[0]), V::add(x[8], in[8]));
}

// ------------------------------------------------------------- kernels

template <class V>
static void premix_n_v(std::uint32_t salt, const std::uint32_t* states,
                       std::size_t count, std::uint32_t* out) {
  const typename V::U seedv = V::set1(scalar::oaat_seed(salt));
  std::size_t i = 0;
  for (; i + V::W <= count; i += V::W)
    V::storeu(out + i, oaat_word_v<V>(seedv, V::loadu(states + i)));
  if (i < count) scalar::premix_n(salt, states + i, count - i, out + i);
}

template <class V>
static void hash_premixed_n_v(const std::uint32_t* premixed, std::size_t count,
                              std::uint32_t data, std::uint32_t* out) {
  const typename V::U datav = V::set1(data);
  std::size_t i = 0;
  for (; i + V::W <= count; i += V::W)
    V::storeu(out + i, oaat_word_v<V>(V::loadu(premixed + i), datav));
  if (i < count) scalar::hash_premixed_n(premixed + i, count - i, data, out + i);
}

template <class V>
static void hash_n_v(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
                     std::size_t count, std::uint32_t data, std::uint32_t* out) {
  std::size_t i = 0;
  switch (kind) {
    case hash::Kind::kOneAtATime: {
      const typename V::U seedv = V::set1(scalar::oaat_seed(salt));
      const typename V::U datav = V::set1(data);
      for (; i + V::W <= count; i += V::W)
        V::storeu(out + i,
                  oaat_word_v<V>(oaat_word_v<V>(seedv, V::loadu(states + i)), datav));
      break;
    }
    case hash::Kind::kLookup3: {
      const typename V::U datav = V::set1(data);
      for (; i + V::W <= count; i += V::W)
        V::storeu(out + i, lookup3_pair_v<V>(V::loadu(states + i), datav, salt));
      break;
    }
    case hash::Kind::kSalsa20: {
      const typename V::U datav = V::set1(data);
      for (; i + V::W <= count; i += V::W)
        V::storeu(out + i, salsa20_pair_v<V>(V::loadu(states + i), datav, salt));
      break;
    }
  }
  if (i < count) scalar::hash_n(kind, salt, states + i, count - i, data, out + i);
}

/// Child-major hash_children (out[i*fanout + v], see Backend): for wide
/// fanouts each leaf's child row is produced with the *chunk values* in
/// the lanes (state broadcast per leaf, v = row offset + iota), so the
/// stores are contiguous rows; narrow fanouts (< W: k <= 2 or a short
/// final chunk) fall back to the scalar kernel.
template <class V>
static void hash_children_v(hash::Kind kind, std::uint32_t salt,
                            const std::uint32_t* states, std::size_t count,
                            std::uint32_t fanout, std::uint32_t* out) {
  // Chunk-value lane vectors, shared by every row. Decoder fanouts are
  // 2^k with k <= 8 (CodeParams), but hash_children is a public API:
  // anything narrower than a vector or wider than the vvec table takes
  // the (always-correct) scalar kernel.
  constexpr std::uint32_t kMaxFanout = 256;
  if (fanout < V::W || fanout % V::W != 0 || fanout > kMaxFanout) {
    scalar::hash_children(kind, salt, states, count, fanout, out);
    return;
  }
  typename V::U vvec[kMaxFanout / V::W];
  const std::uint32_t steps = fanout / static_cast<std::uint32_t>(V::W);
  for (std::uint32_t s = 0; s < steps; ++s)
    vvec[s] = V::add(V::set1(s * static_cast<std::uint32_t>(V::W)), V::iota());

  if (kind == hash::Kind::kOneAtATime) {
    // Per block: premix a batch of leaves lane-parallel, then emit each
    // leaf's child row with the premix broadcast and v in the lanes.
    constexpr std::size_t kBlock = 256;
    std::uint32_t premix[kBlock];
    for (std::size_t base = 0; base < count; base += kBlock) {
      const std::size_t rem = count - base;
      const std::size_t m = rem < kBlock ? rem : kBlock;
      premix_n_v<V>(salt, states + base, m, premix);
      for (std::size_t i = 0; i < m; ++i) {
        const typename V::U pm = V::set1(premix[i]);
        std::uint32_t* row = out + (base + i) * static_cast<std::size_t>(fanout);
        for (std::uint32_t s = 0; s < steps; ++s)
          V::storeu(row + s * V::W, oaat_word_v<V>(pm, vvec[s]));
      }
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const typename V::U st = V::set1(states[i]);
    std::uint32_t* row = out + i * static_cast<std::size_t>(fanout);
    if (kind == hash::Kind::kLookup3) {
      for (std::uint32_t s = 0; s < steps; ++s)
        V::storeu(row + s * V::W, lookup3_pair_v<V>(st, vvec[s], salt));
    } else {
      for (std::uint32_t s = 0; s < steps; ++s)
        V::storeu(row + s * V::W, salsa20_pair_v<V>(st, vvec[s], salt));
    }
  }
}

/// Branchless lane form of monotone_key (backend.h): b ^ (b>>31 | sign).
template <class V>
static inline typename V::U monotone_key_v(typename V::F costs) {
  const typename V::U b = V::castfu(costs);
  return V::xor_(b, V::or_(V::sar(b, 31), V::set1(0x80000000u)));
}

/// Fused d=1 candidate finalize (see Backend::d1_keys), vectorized over
/// each leaf's contiguous child row.
template <class V>
static void d1_keys_v(const float* parent_cost, const float* child_cost,
                      std::size_t count, std::uint32_t fanout, float* cand_cost,
                      std::uint64_t* keys) {
  if (fanout < V::W || fanout % V::W != 0) {
    scalar::d1_keys(parent_cost, child_cost, count, fanout, cand_cost, keys);
    return;
  }
  const typename V::U iota = V::iota();
  for (std::size_t i = 0; i < count; ++i) {
    const typename V::F pc = V::set1f(parent_cost[i]);
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; v += static_cast<std::uint32_t>(V::W)) {
      const std::size_t idx = row + v;
      const typename V::F cost = V::addf(pc, V::loadf(child_cost + idx));
      V::storef(cand_cost + idx, cost);
      const typename V::U idxv =
          V::add(V::set1(static_cast<std::uint32_t>(idx)), iota);
      V::zip_store_keys(keys + idx, idxv, monotone_key_v<V>(cost));
    }
  }
}

template <class V>
static void awgn_accum_v(const std::uint32_t* w, std::size_t count, const float* table,
                         std::uint32_t mask, int cbits, float yr, float yi, float* acc) {
  const typename V::U maskv = V::set1(mask);
  const typename V::F yrv = V::set1f(yr), yiv = V::set1f(yi);
  std::size_t i = 0;
  for (; i + V::W <= count; i += V::W) {
    const typename V::U wv = V::loadu(w + i);
    const typename V::F xr = V::gather(table, V::and_(wv, maskv));
    const typename V::F xi = V::gather(table, V::and_(V::shr(wv, cbits), maskv));
    const typename V::F dr = V::subf(yrv, xr), di = V::subf(yiv, xi);
    V::storef(acc + i, V::addf(V::loadf(acc + i),
                               V::addf(V::mulf(dr, dr), V::mulf(di, di))));
  }
  if (i < count) scalar::awgn_accum(w + i, count - i, table, mask, cbits, yr, yi, acc + i);
}

template <class V>
static void awgn_csi_accum_v(const std::uint32_t* w, std::size_t count,
                             const float* table, std::uint32_t mask, int cbits, float yr,
                             float yi, float hr, float hi, float* acc) {
  const typename V::U maskv = V::set1(mask);
  const typename V::F yrv = V::set1f(yr), yiv = V::set1f(yi);
  const typename V::F hrv = V::set1f(hr), hiv = V::set1f(hi);
  std::size_t i = 0;
  for (; i + V::W <= count; i += V::W) {
    const typename V::U wv = V::loadu(w + i);
    const typename V::F xr = V::gather(table, V::and_(wv, maskv));
    const typename V::F xi = V::gather(table, V::and_(V::shr(wv, cbits), maskv));
    const typename V::F rr = V::subf(V::mulf(hrv, xr), V::mulf(hiv, xi));
    const typename V::F ri = V::addf(V::mulf(hrv, xi), V::mulf(hiv, xr));
    const typename V::F dr = V::subf(yrv, rr), di = V::subf(yiv, ri);
    V::storef(acc + i, V::addf(V::loadf(acc + i),
                               V::addf(V::mulf(dr, dr), V::mulf(di, di))));
  }
  if (i < count)
    scalar::awgn_csi_accum(w + i, count - i, table, mask, cbits, yr, yi, hr, hi, acc + i);
}

template <class V>
static void awgn_csi_fx_accum_v(const std::uint32_t* w, std::size_t count,
                                const float* table, std::uint32_t mask, int cbits,
                                float yr, float yi, float hr, float hi, float fx_scale,
                                float* acc) {
  const typename V::U maskv = V::set1(mask);
  const typename V::F yrv = V::set1f(yr), yiv = V::set1f(yi);
  const typename V::F hrv = V::set1f(hr), hiv = V::set1f(hi);
  const typename V::F sv = V::set1f(fx_scale);
  std::size_t i = 0;
  for (; i + V::W <= count; i += V::W) {
    const typename V::U wv = V::loadu(w + i);
    const typename V::F xr = V::gather(table, V::and_(wv, maskv));
    const typename V::F xi = V::gather(table, V::and_(V::shr(wv, cbits), maskv));
    // fx_quantise(v, s) = nearbyintf(v*s)/s, lane-wise with the
    // current-rounding-direction round (same default nearest-even).
    const typename V::F rr =
        V::divf(V::roundf_cur(V::mulf(V::subf(V::mulf(hrv, xr), V::mulf(hiv, xi)), sv)), sv);
    const typename V::F ri =
        V::divf(V::roundf_cur(V::mulf(V::addf(V::mulf(hrv, xi), V::mulf(hiv, xr)), sv)), sv);
    const typename V::F dr = V::subf(yrv, rr), di = V::subf(yiv, ri);
    V::storef(acc + i, V::addf(V::loadf(acc + i),
                               V::addf(V::mulf(dr, dr), V::mulf(di, di))));
  }
  if (i < count)
    scalar::awgn_csi_fx_accum(w + i, count - i, table, mask, cbits, yr, yi, hr, hi,
                              fx_scale, acc + i);
}

template <class V>
static void bsc_gather_bit_v(const std::uint32_t* w, std::size_t count, std::uint32_t j,
                             std::uint64_t* acc) {
  std::size_t i = 0;
  for (; i + V::W <= count; i += V::W) V::gather_bits(acc + i, V::loadu(w + i), j);
  if (i < count) scalar::bsc_gather_bit(w + i, count - i, j, acc + i);
}

/// The Ops policy the fused expand drivers (expand.h) instantiate with.
template <class V>
struct SimdOps {
  static void hash_n(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
                     std::size_t count, std::uint32_t data, std::uint32_t* out) {
    hash_n_v<V>(kind, salt, states, count, data, out);
  }
  static void hash_children(hash::Kind kind, std::uint32_t salt,
                            const std::uint32_t* states, std::size_t count,
                            std::uint32_t fanout, std::uint32_t* out) {
    hash_children_v<V>(kind, salt, states, count, fanout, out);
  }
  static void premix_n(std::uint32_t salt, const std::uint32_t* states,
                       std::size_t count, std::uint32_t* out) {
    premix_n_v<V>(salt, states, count, out);
  }
  static void hash_premixed_n(const std::uint32_t* premixed, std::size_t count,
                              std::uint32_t data, std::uint32_t* out) {
    hash_premixed_n_v<V>(premixed, count, data, out);
  }
  static void awgn_accum(const std::uint32_t* w, std::size_t count, const float* table,
                         std::uint32_t mask, int cbits, float yr, float yi, float* acc) {
    awgn_accum_v<V>(w, count, table, mask, cbits, yr, yi, acc);
  }
  static void awgn_csi_accum(const std::uint32_t* w, std::size_t count,
                             const float* table, std::uint32_t mask, int cbits, float yr,
                             float yi, float hr, float hi, float* acc) {
    awgn_csi_accum_v<V>(w, count, table, mask, cbits, yr, yi, hr, hi, acc);
  }
  static void awgn_csi_fx_accum(const std::uint32_t* w, std::size_t count,
                                const float* table, std::uint32_t mask, int cbits,
                                float yr, float yi, float hr, float hi, float fx_scale,
                                float* acc) {
    awgn_csi_fx_accum_v<V>(w, count, table, mask, cbits, yr, yi, hr, hi, fx_scale, acc);
  }
  static void bsc_gather_bit(const std::uint32_t* w, std::size_t count, std::uint32_t j,
                             std::uint64_t* acc) {
    bsc_gather_bit_v<V>(w, count, j, acc);
  }
  static void bsc_hamming_add(const std::uint64_t* acc, std::size_t count,
                              std::uint64_t rx_word, float* costs) {
    // XOR + popcount per word: the scalar loop compiles to the native
    // popcount instruction in these ISA-flagged TUs already.
    scalar::bsc_hamming_add(acc, count, rx_word, costs);
  }
  static void d1_keys(const float* parent_cost, const float* child_cost,
                      std::size_t count, std::uint32_t fanout, float* cand_cost,
                      std::uint64_t* keys) {
    d1_keys_v<V>(parent_cost, child_cost, count, fanout, cand_cost, keys);
  }
};

}  // namespace spinal::backend::simd
