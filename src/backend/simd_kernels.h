#pragma once
// Generic SIMD kernels over a vector-of-uint32 abstraction V (see
// vec_x86.h / vec_neon.h for the wrappers). Each kernel runs the main
// loop V::W lanes at a time and finishes the count % W tail with the
// scalar primitive on offset pointers — elementwise kernels make the
// split exact. Bit-identity rules:
//
//  * hash lanes are pure integer ops — identical by construction;
//  * float metrics keep the scalar expression shapes (separate mul and
//    add, never a fused multiply-add: the build also pins
//    -ffp-contract=off in these TUs) and the scalar per-lane reduction
//    order (symbols accumulate sequentially per lane; lanes are
//    independent slots, never summed across);
//  * fixed-point rounding uses the current-rounding-direction round
//    instruction, matching scalar nearbyintf.
//
// Everything here is `static` (internal linkage) and only ever
// instantiated inside the one TU compiled with the matching ISA flags.

#include <cstddef>
#include <cstdint>

#include "backend/scalar_kernels.h"

namespace spinal::backend::simd {

template <class V>
static inline typename V::U rotl_v(typename V::U x, int r) {
  return V::or_(V::shl(x, r), V::shr(x, 32 - r));
}

/// One-at-a-time over one 32-bit word (see hash::one_at_a_time_word).
template <class V>
static inline typename V::U oaat_word_v(typename V::U h, typename V::U word) {
  const typename V::U byte_mask = V::set1(0xFFu);
  for (int b = 0; b < 4; ++b) {
    h = V::add(h, V::and_(V::shr(word, 8 * b), byte_mask));
    h = V::add(h, V::shl(h, 10));
    h = V::xor_(h, V::shr(h, 6));
  }
  h = V::add(h, V::shl(h, 3));
  h = V::xor_(h, V::shr(h, 11));
  h = V::add(h, V::shl(h, 15));
  return h;
}

/// lookup3 final_mix (see jenkins.cpp) on vector lanes.
template <class V>
static inline void final_mix_v(typename V::U& a, typename V::U& b, typename V::U& c) {
  c = V::xor_(c, b); c = V::sub(c, rotl_v<V>(b, 14));
  a = V::xor_(a, c); a = V::sub(a, rotl_v<V>(c, 11));
  b = V::xor_(b, a); b = V::sub(b, rotl_v<V>(a, 25));
  c = V::xor_(c, b); c = V::sub(c, rotl_v<V>(b, 16));
  a = V::xor_(a, c); a = V::sub(a, rotl_v<V>(c, 4));
  b = V::xor_(b, a); b = V::sub(b, rotl_v<V>(a, 14));
  c = V::xor_(c, b); c = V::sub(c, rotl_v<V>(b, 24));
}

/// lookup3_hashword for a (state, data) pair: length 2, so the init
/// value folds (2 << 2) and the switch reduces to b += data; a += state.
/// Both state and data are lane vectors (either may be a broadcast).
template <class V>
static inline typename V::U lookup3_pair_v(typename V::U state, typename V::U data,
                                           std::uint32_t salt) {
  const std::uint32_t init = 0xdeadbeefu + (2u << 2) + salt;
  typename V::U a = V::add(V::set1(init), state);
  typename V::U b = V::add(V::set1(init), data);
  typename V::U c = V::set1(init);
  final_mix_v<V>(a, b, c);
  return c;
}

template <class V>
static inline void salsa_quarter_v(typename V::U& a, typename V::U& b,
                                   typename V::U& c, typename V::U& d) {
  b = V::xor_(b, rotl_v<V>(V::add(a, d), 7));
  c = V::xor_(c, rotl_v<V>(V::add(b, a), 9));
  d = V::xor_(d, rotl_v<V>(V::add(c, b), 13));
  a = V::xor_(a, rotl_v<V>(V::add(d, c), 18));
}

/// Salsa20/20 core on a (state, data, salt) block per lane; returns
/// out[0] ^ out[8] (see salsa20.cpp salsa20_pair). Both state and data
/// are lane vectors (either may be a broadcast).
template <class V>
static inline typename V::U salsa20_pair_v(typename V::U state, typename V::U data,
                                           std::uint32_t salt) {
  using U = typename V::U;
  U in[16];
  in[0] = V::set1(0x61707865u);
  in[1] = state;
  in[2] = data;
  in[3] = V::set1(salt);
  in[4] = V::set1(0x3320646eu);
  in[5] = V::xor_(state, V::set1(0x9E3779B9u));
  in[6] = V::xor_(data, V::set1(0x7F4A7C15u));
  in[7] = V::set1(salt ^ 0x85EBCA6Bu);
  in[8] = V::set1(0x79622d32u);
  in[9] = V::set1(0u);
  in[10] = V::set1(0u);
  in[11] = V::set1(0u);
  in[12] = V::set1(0x6b206574u);
  in[13] = V::add(state, data);
  in[14] = V::add(data, V::set1(salt));
  in[15] = V::add(V::set1(salt), state);

  U x[16];
  for (int i = 0; i < 16; ++i) x[i] = in[i];
  for (int round = 0; round < 20; round += 2) {
    // Column round.
    salsa_quarter_v<V>(x[0], x[4], x[8], x[12]);
    salsa_quarter_v<V>(x[5], x[9], x[13], x[1]);
    salsa_quarter_v<V>(x[10], x[14], x[2], x[6]);
    salsa_quarter_v<V>(x[15], x[3], x[7], x[11]);
    // Row round.
    salsa_quarter_v<V>(x[0], x[1], x[2], x[3]);
    salsa_quarter_v<V>(x[5], x[6], x[7], x[4]);
    salsa_quarter_v<V>(x[10], x[11], x[8], x[9]);
    salsa_quarter_v<V>(x[15], x[12], x[13], x[14]);
  }
  return V::xor_(V::add(x[0], in[0]), V::add(x[8], in[8]));
}

// ------------------------------------------------------------- kernels

// The one-at-a-time mix is a serial ~15-op dependency chain per vector;
// a single-vector loop is latency-bound, not throughput-bound. The hot
// batched mixes below therefore run *four* independent chains per
// iteration (software-pipelined: each chain's ~15 serial ops overlap
// the other three's) — the compiler does not interleave across
// iterations on its own, and the hash mixes dominate the fused
// expansion kernel. Four chains ≈ the latency·throughput product of
// the add/shift/xor units on current cores; two left them half idle.

template <class V>
static void premix_n_v(std::uint32_t salt, const std::uint32_t* states,
                       std::size_t count, std::uint32_t* out) {
  const typename V::U seedv = V::set1(scalar::oaat_seed(salt));
  std::size_t i = 0;
  for (; i + 4 * V::W <= count; i += 4 * V::W) {
    V::storeu(out + i, oaat_word_v<V>(seedv, V::loadu(states + i)));
    V::storeu(out + i + V::W, oaat_word_v<V>(seedv, V::loadu(states + i + V::W)));
    V::storeu(out + i + 2 * V::W,
              oaat_word_v<V>(seedv, V::loadu(states + i + 2 * V::W)));
    V::storeu(out + i + 3 * V::W,
              oaat_word_v<V>(seedv, V::loadu(states + i + 3 * V::W)));
  }
  for (; i + V::W <= count; i += V::W)
    V::storeu(out + i, oaat_word_v<V>(seedv, V::loadu(states + i)));
  if (i < count) scalar::premix_n(salt, states + i, count - i, out + i);
}

template <class V>
static void hash_premixed_n_v(const std::uint32_t* premixed, std::size_t count,
                              std::uint32_t data, std::uint32_t* out) {
  const typename V::U datav = V::set1(data);
  std::size_t i = 0;
  for (; i + 4 * V::W <= count; i += 4 * V::W) {
    V::storeu(out + i, oaat_word_v<V>(V::loadu(premixed + i), datav));
    V::storeu(out + i + V::W, oaat_word_v<V>(V::loadu(premixed + i + V::W), datav));
    V::storeu(out + i + 2 * V::W,
              oaat_word_v<V>(V::loadu(premixed + i + 2 * V::W), datav));
    V::storeu(out + i + 3 * V::W,
              oaat_word_v<V>(V::loadu(premixed + i + 3 * V::W), datav));
  }
  for (; i + V::W <= count; i += V::W)
    V::storeu(out + i, oaat_word_v<V>(V::loadu(premixed + i), datav));
  if (i < count) scalar::hash_premixed_n(premixed + i, count - i, data, out + i);
}

template <class V>
static void hash_n_v(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
                     std::size_t count, std::uint32_t data, std::uint32_t* out) {
  std::size_t i = 0;
  switch (kind) {
    case hash::Kind::kOneAtATime: {
      const typename V::U seedv = V::set1(scalar::oaat_seed(salt));
      const typename V::U datav = V::set1(data);
      for (; i + 4 * V::W <= count; i += 4 * V::W) {
        V::storeu(out + i,
                  oaat_word_v<V>(oaat_word_v<V>(seedv, V::loadu(states + i)), datav));
        V::storeu(out + i + V::W,
                  oaat_word_v<V>(oaat_word_v<V>(seedv, V::loadu(states + i + V::W)),
                                 datav));
        V::storeu(out + i + 2 * V::W,
                  oaat_word_v<V>(
                      oaat_word_v<V>(seedv, V::loadu(states + i + 2 * V::W)), datav));
        V::storeu(out + i + 3 * V::W,
                  oaat_word_v<V>(
                      oaat_word_v<V>(seedv, V::loadu(states + i + 3 * V::W)), datav));
      }
      for (; i + V::W <= count; i += V::W)
        V::storeu(out + i,
                  oaat_word_v<V>(oaat_word_v<V>(seedv, V::loadu(states + i)), datav));
      break;
    }
    case hash::Kind::kLookup3: {
      const typename V::U datav = V::set1(data);
      for (; i + V::W <= count; i += V::W)
        V::storeu(out + i, lookup3_pair_v<V>(V::loadu(states + i), datav, salt));
      break;
    }
    case hash::Kind::kSalsa20: {
      const typename V::U datav = V::set1(data);
      for (; i + V::W <= count; i += V::W)
        V::storeu(out + i, salsa20_pair_v<V>(V::loadu(states + i), datav, salt));
      break;
    }
  }
  if (i < count) scalar::hash_n(kind, salt, states + i, count - i, data, out + i);
}

/// Child-major hash_children (out[i*fanout + v], see Backend): for wide
/// fanouts each leaf's child row is produced with the *chunk values* in
/// the lanes (state broadcast per leaf, v = row offset + iota), so the
/// stores are contiguous rows; narrow fanouts (< W: k <= 2 or a short
/// final chunk) fall back to the scalar kernel.
template <class V>
static void hash_children_v(hash::Kind kind, std::uint32_t salt,
                            const std::uint32_t* states, std::size_t count,
                            std::uint32_t fanout, std::uint32_t* out) {
  // Chunk-value lane vectors, shared by every row. Decoder fanouts are
  // 2^k with k <= 8 (CodeParams), but hash_children is a public API:
  // anything narrower than a vector or wider than the vvec table takes
  // the (always-correct) scalar kernel.
  constexpr std::uint32_t kMaxFanout = 256;
  if (fanout < V::W || fanout % V::W != 0 || fanout > kMaxFanout) {
    scalar::hash_children(kind, salt, states, count, fanout, out);
    return;
  }
  typename V::U vvec[kMaxFanout / V::W];
  const std::uint32_t steps = fanout / static_cast<std::uint32_t>(V::W);
  for (std::uint32_t s = 0; s < steps; ++s)
    vvec[s] = V::add(V::set1(s * static_cast<std::uint32_t>(V::W)), V::iota());

  if (kind == hash::Kind::kOneAtATime) {
    // Per block: premix a batch of leaves lane-parallel, then emit each
    // leaf's child row with the premix broadcast and v in the lanes.
    // Rows of adjacent leaves are independent chains: emitting two per
    // iteration keeps the serial oaat latency off the critical path.
    constexpr std::size_t kBlock = 256;
    std::uint32_t premix[kBlock];
    for (std::size_t base = 0; base < count; base += kBlock) {
      const std::size_t rem = count - base;
      const std::size_t m = rem < kBlock ? rem : kBlock;
      premix_n_v<V>(salt, states + base, m, premix);
      std::size_t i = 0;
      for (; i + 2 <= m; i += 2) {
        const typename V::U pm0 = V::set1(premix[i]);
        const typename V::U pm1 = V::set1(premix[i + 1]);
        std::uint32_t* row0 = out + (base + i) * static_cast<std::size_t>(fanout);
        std::uint32_t* row1 = row0 + fanout;
        for (std::uint32_t s = 0; s < steps; ++s) {
          V::storeu(row0 + s * V::W, oaat_word_v<V>(pm0, vvec[s]));
          V::storeu(row1 + s * V::W, oaat_word_v<V>(pm1, vvec[s]));
        }
      }
      for (; i < m; ++i) {
        const typename V::U pm = V::set1(premix[i]);
        std::uint32_t* row = out + (base + i) * static_cast<std::size_t>(fanout);
        for (std::uint32_t s = 0; s < steps; ++s)
          V::storeu(row + s * V::W, oaat_word_v<V>(pm, vvec[s]));
      }
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const typename V::U st = V::set1(states[i]);
    std::uint32_t* row = out + i * static_cast<std::size_t>(fanout);
    if (kind == hash::Kind::kLookup3) {
      for (std::uint32_t s = 0; s < steps; ++s)
        V::storeu(row + s * V::W, lookup3_pair_v<V>(st, vvec[s], salt));
    } else {
      for (std::uint32_t s = 0; s < steps; ++s)
        V::storeu(row + s * V::W, salsa20_pair_v<V>(st, vvec[s], salt));
    }
  }
}

/// Fused child hash + RNG-lane derivation (see
/// scalar::hash_children_premix): one pass, child states stay in
/// registers for the lane mix. Two leaf rows per iteration keep the
/// serial oaat chains off the critical path.
template <class V>
static void hash_children_premix_v(hash::Kind kind, std::uint32_t salt, bool premix,
                                   const std::uint32_t* states, std::size_t count,
                                   std::uint32_t fanout, std::uint32_t* out_states,
                                   std::uint32_t* out_lanes) {
  constexpr std::uint32_t kMaxFanout = 256;
  if (kind != hash::Kind::kOneAtATime || fanout < V::W || fanout % V::W != 0 ||
      fanout > kMaxFanout) {
    hash_children_v<V>(kind, salt, states, count, fanout, out_states);
    if (kind == hash::Kind::kOneAtATime && premix) {
      premix_n_v<V>(salt, out_states,
                    count * static_cast<std::size_t>(fanout), out_lanes);
    } else {
      const std::size_t total = count * static_cast<std::size_t>(fanout);
      std::size_t i = 0;
      for (; i + V::W <= total; i += V::W)
        V::storeu(out_lanes + i, V::loadu(out_states + i));
      for (; i < total; ++i) out_lanes[i] = out_states[i];
    }
    return;
  }
  typename V::U vvec[kMaxFanout / V::W];
  const std::uint32_t steps = fanout / static_cast<std::uint32_t>(V::W);
  for (std::uint32_t s = 0; s < steps; ++s)
    vvec[s] = V::add(V::set1(s * static_cast<std::uint32_t>(V::W)), V::iota());
  const typename V::U seedv = V::set1(scalar::oaat_seed(salt));

  constexpr std::size_t kBlock = 256;
  std::uint32_t pmbuf[kBlock];
  for (std::size_t base = 0; base < count; base += kBlock) {
    const std::size_t rem = count - base;
    const std::size_t m = rem < kBlock ? rem : kBlock;
    premix_n_v<V>(salt, states + base, m, pmbuf);
    // Two leaf rows per iteration: the child mix feeding the lane mix
    // is one long serial chain, so parallel rows are what keep the
    // units busy.
    std::size_t i = 0;
    for (; i + 2 <= m; i += 2) {
      const typename V::U pm0 = V::set1(pmbuf[i]);
      const typename V::U pm1 = V::set1(pmbuf[i + 1]);
      const std::size_t row0 = (base + i) * static_cast<std::size_t>(fanout);
      const std::size_t row1 = row0 + fanout;
      for (std::uint32_t s = 0; s < steps; ++s) {
        const typename V::U st0 = oaat_word_v<V>(pm0, vvec[s]);
        const typename V::U st1 = oaat_word_v<V>(pm1, vvec[s]);
        V::storeu(out_states + row0 + s * V::W, st0);
        V::storeu(out_states + row1 + s * V::W, st1);
        V::storeu(out_lanes + row0 + s * V::W,
                  premix ? oaat_word_v<V>(seedv, st0) : st0);
        V::storeu(out_lanes + row1 + s * V::W,
                  premix ? oaat_word_v<V>(seedv, st1) : st1);
      }
    }
    for (; i < m; ++i) {
      const typename V::U pm = V::set1(pmbuf[i]);
      const std::size_t row = (base + i) * static_cast<std::size_t>(fanout);
      for (std::uint32_t s = 0; s < steps; ++s) {
        const typename V::U st = oaat_word_v<V>(pm, vvec[s]);
        V::storeu(out_states + row + s * V::W, st);
        V::storeu(out_lanes + row + s * V::W,
                  premix ? oaat_word_v<V>(seedv, st) : st);
      }
    }
  }
}

/// Fused RNG draw + AWGN l2 metric for one symbol (see
/// scalar::awgn_sweep): the hash feeds the metric expression directly,
/// no scratch round-trip. kStore selects first-symbol store semantics
/// (0 + x == x exactly) vs accumulate — one body, so the two paths can
/// never drift apart. Two vectors per iteration in the hot premixed
/// shape: the hash chain ahead of each gather is serial, so paired
/// chains hide its latency.
template <class V, bool kStore>
static void awgn_sweep_impl_v(hash::Kind kind, std::uint32_t salt, bool premixed,
                              const std::uint32_t* lanes, std::size_t count,
                              std::uint32_t data, const float* table,
                              std::uint32_t mask, int cbits, float yr, float yi,
                              std::uint32_t* w_scratch, float* acc) {
  const typename V::U datav = V::set1(data);
  const typename V::U maskv = V::set1(mask);
  const typename V::F yrv = V::set1f(yr), yiv = V::set1f(yi);
  const typename V::U seedv = V::set1(scalar::oaat_seed(salt));
  const auto metric = [&](typename V::U w) {
    const typename V::F xr = V::gather(table, V::and_(w, maskv));
    const typename V::F xi = V::gather(table, V::and_(V::shr(w, cbits), maskv));
    const typename V::F dr = V::subf(yrv, xr), di = V::subf(yiv, xi);
    return V::addf(V::mulf(dr, dr), V::mulf(di, di));
  };
  const auto emit = [&](std::size_t at, typename V::F m) {
    if constexpr (kStore)
      V::storef(acc + at, m);
    else
      V::storef(acc + at, V::addf(V::loadf(acc + at), m));
  };
  std::size_t i = 0;
  if (premixed) {
    for (; i + 4 * V::W <= count; i += 4 * V::W) {
      const typename V::U w0 = oaat_word_v<V>(V::loadu(lanes + i), datav);
      const typename V::U w1 = oaat_word_v<V>(V::loadu(lanes + i + V::W), datav);
      const typename V::U w2 = oaat_word_v<V>(V::loadu(lanes + i + 2 * V::W), datav);
      const typename V::U w3 = oaat_word_v<V>(V::loadu(lanes + i + 3 * V::W), datav);
      emit(i, metric(w0));
      emit(i + V::W, metric(w1));
      emit(i + 2 * V::W, metric(w2));
      emit(i + 3 * V::W, metric(w3));
    }
  }
  for (; i + V::W <= count; i += V::W) {
    typename V::U w;
    if (premixed)
      w = oaat_word_v<V>(V::loadu(lanes + i), datav);
    else if (kind == hash::Kind::kOneAtATime)
      w = oaat_word_v<V>(oaat_word_v<V>(seedv, V::loadu(lanes + i)), datav);
    else if (kind == hash::Kind::kLookup3)
      w = lookup3_pair_v<V>(V::loadu(lanes + i), datav, salt);
    else
      w = salsa20_pair_v<V>(V::loadu(lanes + i), datav, salt);
    emit(i, metric(w));
  }
  if (i < count) {
    if constexpr (kStore)
      scalar::awgn_sweep0(kind, salt, premixed, lanes + i, count - i, data, table,
                          mask, cbits, yr, yi, w_scratch + i, acc + i);
    else
      scalar::awgn_sweep(kind, salt, premixed, lanes + i, count - i, data, table,
                         mask, cbits, yr, yi, w_scratch + i, acc + i);
  }
}

template <class V>
static void awgn_sweep_v(hash::Kind kind, std::uint32_t salt, bool premixed,
                         const std::uint32_t* lanes, std::size_t count,
                         std::uint32_t data, const float* table, std::uint32_t mask,
                         int cbits, float yr, float yi, std::uint32_t* w_scratch,
                         float* acc) {
  awgn_sweep_impl_v<V, false>(kind, salt, premixed, lanes, count, data, table, mask,
                              cbits, yr, yi, w_scratch, acc);
}

template <class V>
static void awgn_sweep0_v(hash::Kind kind, std::uint32_t salt, bool premixed,
                          const std::uint32_t* lanes, std::size_t count,
                          std::uint32_t data, const float* table, std::uint32_t mask,
                          int cbits, float yr, float yi, std::uint32_t* w_scratch,
                          float* acc) {
  awgn_sweep_impl_v<V, true>(kind, salt, premixed, lanes, count, data, table, mask,
                             cbits, yr, yi, w_scratch, acc);
}

/// Branchless lane form of monotone_key (backend.h): b ^ (b>>31 | sign).
template <class V>
static inline typename V::U monotone_key_v(typename V::F costs) {
  const typename V::U b = V::castfu(costs);
  return V::xor_(b, V::or_(V::sar(b, 31), V::set1(0x80000000u)));
}

/// Per-vector survivors of the full-key bound: lane l survives when
/// (m[l] << 32 | idx[l]) <= bound_key, i.e. cost word below the bound's,
/// or equal with the index tie-break in its favour.
template <class V>
static inline unsigned keep_mask_v(typename V::U m, typename V::U idxv,
                                   typename V::U bhi, typename V::U blo,
                                   unsigned full) {
  const unsigned m_gt = V::gtu_mask(m, bhi);
  const unsigned m_lt = V::gtu_mask(bhi, m);
  const unsigned m_eq = full & ~(m_gt | m_lt);
  const unsigned i_le = full & ~V::gtu_mask(idxv, blo);
  return m_lt | (m_eq & i_le);
}

/// Streaming fused d=1 finalize+prune (see Backend::d1_prune),
/// vectorized over each leaf's contiguous child row. Per vector: cost,
/// monotone key, and the full-key bound compare; surviving lanes
/// append through the branchless compress store, a fully-pruned vector
/// writes nothing at all (the common case once the bound tightens).
/// Append order is candidate order, so the output matches the scalar
/// kernel exactly.
template <class V>
static std::size_t d1_prune_v(const float* parent_cost, const float* child_cost,
                              std::size_t count, std::uint32_t fanout,
                              std::uint32_t cand_base, std::uint64_t bound_key,
                              std::uint64_t* out_keys) {
  if (fanout < V::W || fanout % V::W != 0)
    return scalar::d1_prune(parent_cost, child_cost, count, fanout, cand_base,
                            bound_key, out_keys);
  constexpr unsigned kFull = (1u << V::W) - 1u;
  const typename V::U bhi = V::set1(static_cast<std::uint32_t>(bound_key >> 32));
  const typename V::U blo = V::set1(static_cast<std::uint32_t>(bound_key));
  const typename V::U iota = V::iota();
  std::size_t sc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const float pc = parent_cost[i];
    if ((static_cast<std::uint64_t>(monotone_key(pc)) << 32) > bound_key)
      continue;  // children cost >= pc
    const typename V::F pcv = V::set1f(pc);
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; v += static_cast<std::uint32_t>(V::W)) {
      const std::size_t idx = row + v;
      const typename V::F cost = V::addf(pcv, V::loadf(child_cost + idx));
      const typename V::U m = monotone_key_v<V>(cost);
      const typename V::U idxv =
          V::add(V::set1(cand_base + static_cast<std::uint32_t>(idx)), iota);
      const unsigned keep = keep_mask_v<V>(m, idxv, bhi, blo, kFull);
      if (keep == 0) continue;  // the hot case once the bound bites
      sc += V::compress_store_keys(out_keys + sc, idxv, m, keep);
    }
  }
  return sc;
}

/// Partial-cost survivor compression (see scalar::partial_compress):
/// acc, lanes and the survivor index list compress through the same
/// per-vector mask. In-place safe: the write cursor never passes the
/// read cursor, and the blind compress stores stay below the next
/// unread vector.
template <class V>
static std::size_t partial_compress_v(const float* parent_cost, float* acc,
                                      std::size_t count, std::uint32_t fanout,
                                      std::uint64_t bound_key, std::uint32_t* lanes,
                                      std::uint32_t* idx_out) {
  // The in-place float compress needs the branchless whole-vector
  // store (writing acc lane patterns through plain uint32 stores would
  // alias float storage); narrow ISAs take the scalar path.
  if constexpr (!V::kFastCompress)
    return scalar::partial_compress(parent_cost, acc, count, fanout, bound_key, lanes,
                                    idx_out);
  else if (fanout < V::W || fanout % V::W != 0)
    return scalar::partial_compress(parent_cost, acc, count, fanout, bound_key, lanes,
                                    idx_out);
  constexpr unsigned kFull = (1u << V::W) - 1u;
  const typename V::U bhi = V::set1(static_cast<std::uint32_t>(bound_key >> 32));
  const typename V::U blo = V::set1(static_cast<std::uint32_t>(bound_key));
  const typename V::U iota = V::iota();
  std::uint32_t* const acc_u = reinterpret_cast<std::uint32_t*>(acc);
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const float pc = parent_cost[i];
    if ((static_cast<std::uint64_t>(monotone_key(pc)) << 32) > bound_key)
      continue;  // costs only grow
    const typename V::F pcv = V::set1f(pc);
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; v += static_cast<std::uint32_t>(V::W)) {
      const std::size_t c = row + v;
      const typename V::F a = V::loadf(acc + c);
      const typename V::U m = monotone_key_v<V>(V::addf(pcv, a));
      const typename V::U iv = V::add(V::set1(static_cast<std::uint32_t>(c)), iota);
      const unsigned keep = keep_mask_v<V>(m, iv, bhi, blo, kFull);
      if (keep == 0) continue;
      const typename V::U lv = V::loadu(lanes + c);
      V::compress_store_u32(acc_u + n, V::castfu(a), keep);
      V::compress_store_u32(lanes + n, lv, keep);
      n += V::compress_store_u32(idx_out + n, iv, keep);
    }
  }
  return n;
}

/// Final key build over the compressed survivor lanes (see
/// scalar::final_prune), with the parent costs gathered by child index.
template <class V>
static std::size_t final_prune_v(const float* parent_cost, const float* acc,
                                 const std::uint32_t* idx, std::size_t n,
                                 int log2_fanout, std::uint32_t cand_base,
                                 std::uint64_t bound_key, std::uint64_t* out_keys) {
  constexpr unsigned kFull = (1u << V::W) - 1u;
  const typename V::U bhi = V::set1(static_cast<std::uint32_t>(bound_key >> 32));
  const typename V::U blo = V::set1(static_cast<std::uint32_t>(bound_key));
  const typename V::U basev = V::set1(cand_base);
  std::size_t sc = 0;
  std::size_t j = 0;
  for (; j + V::W <= n; j += V::W) {
    const typename V::U idxv = V::loadu(idx + j);
    const typename V::F pc = V::gather(parent_cost, V::shr(idxv, log2_fanout));
    const typename V::U m = monotone_key_v<V>(V::addf(pc, V::loadf(acc + j)));
    const typename V::U candv = V::add(basev, idxv);
    const unsigned keep = keep_mask_v<V>(m, candv, bhi, blo, kFull);
    if (keep == 0) continue;
    sc += V::compress_store_keys(out_keys + sc, candv, m, keep);
  }
  if (j < n)
    sc += scalar::final_prune(parent_cost, acc + j, idx + j, n - j, log2_fanout,
                              cand_base, bound_key, out_keys + sc);
  return sc;
}

/// Per-leaf row minima folded with the parent cost (see
/// Backend::row_mins): vector fold over the row, then a scalar reduce
/// of the fold buffer — exact, because float min is order-free on
/// inputs without -0 (the kernel precondition).
template <class V>
static void row_mins_v(const float* leaf_cost, const float* child_cost,
                       std::size_t leaves, std::uint32_t fanout, float* out) {
  if (fanout < V::W || fanout % V::W != 0) {
    scalar::row_mins(leaf_cost, child_cost, leaves, fanout, out);
    return;
  }
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    typename V::F acc = V::loadf(child_cost + row);
    for (std::uint32_t v = static_cast<std::uint32_t>(V::W); v < fanout;
         v += static_cast<std::uint32_t>(V::W))
      acc = V::minf(acc, V::loadf(child_cost + row + v));
    float buf[V::W];
    V::storef(buf, acc);
    float m = buf[0];
    for (unsigned l = 1; l < V::W; ++l)
      if (buf[l] < m) m = buf[l];
    out[i] = leaf_cost[i] + m;
  }
}

/// Survivor-group row emit (see Backend::regroup_emit): whole child
/// rows move contiguously (every child of a leaf shares its group), so
/// the copy + cost finalize + path extension all vectorize over the
/// row; pruned groups skip without touching memory.
template <class V>
static void regroup_emit_v(const std::uint32_t* child_state, const float* child_cost,
                           const float* leaf_cost, const std::uint32_t* leaf_path,
                           std::size_t leaves, std::uint32_t fanout, int k, int d,
                           std::uint32_t group_mask, const std::int32_t* group_rowbase,
                           std::uint32_t* out_state, float* out_cost,
                           std::uint32_t* out_path) {
  constexpr std::uint32_t kMaxFanout = 256;
  if (fanout < V::W || fanout % V::W != 0 || fanout > kMaxFanout || group_mask >= 256) {
    scalar::regroup_emit(child_state, child_cost, leaf_cost, leaf_path, leaves, fanout,
                         k, d, group_mask, group_rowbase, out_state, out_cost,
                         out_path);
    return;
  }
  const int shift = k * (d - 2);
  typename V::U vvec[kMaxFanout / V::W];  // v << shift, per vector step
  const std::uint32_t steps = fanout / static_cast<std::uint32_t>(V::W);
  for (std::uint32_t s = 0; s < steps; ++s)
    vvec[s] = V::shl(V::add(V::set1(s * static_cast<std::uint32_t>(V::W)), V::iota()),
                     shift);
  std::uint32_t next[256];
  for (std::uint32_t g = 0; g <= group_mask; ++g)
    next[g] = group_rowbase[g] < 0 ? 0 : static_cast<std::uint32_t>(group_rowbase[g]);
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::uint32_t g = leaf_path[i] & group_mask;
    if (group_rowbase[g] < 0) continue;
    const typename V::F pcv = V::set1f(leaf_cost[i]);
    const typename V::U pbase = V::set1(leaf_path[i] >> k);
    const std::size_t src = i * static_cast<std::size_t>(fanout);
    const std::size_t dst = next[g];
    next[g] += fanout;
    for (std::uint32_t s = 0; s < steps; ++s) {
      const std::size_t o = s * V::W;
      V::storeu(out_state + dst + o, V::loadu(child_state + src + o));
      V::storef(out_cost + dst + o, V::addf(pcv, V::loadf(child_cost + src + o)));
      V::storeu(out_path + dst + o, V::or_(pbase, vvec[s]));
    }
  }
}

template <class V>
static void awgn_accum_v(const std::uint32_t* w, std::size_t count, const float* table,
                         std::uint32_t mask, int cbits, float yr, float yi, float* acc) {
  const typename V::U maskv = V::set1(mask);
  const typename V::F yrv = V::set1f(yr), yiv = V::set1f(yi);
  std::size_t i = 0;
  for (; i + V::W <= count; i += V::W) {
    const typename V::U wv = V::loadu(w + i);
    const typename V::F xr = V::gather(table, V::and_(wv, maskv));
    const typename V::F xi = V::gather(table, V::and_(V::shr(wv, cbits), maskv));
    const typename V::F dr = V::subf(yrv, xr), di = V::subf(yiv, xi);
    V::storef(acc + i, V::addf(V::loadf(acc + i),
                               V::addf(V::mulf(dr, dr), V::mulf(di, di))));
  }
  if (i < count) scalar::awgn_accum(w + i, count - i, table, mask, cbits, yr, yi, acc + i);
}

template <class V>
static void awgn_csi_accum_v(const std::uint32_t* w, std::size_t count,
                             const float* table, std::uint32_t mask, int cbits, float yr,
                             float yi, float hr, float hi, float* acc) {
  const typename V::U maskv = V::set1(mask);
  const typename V::F yrv = V::set1f(yr), yiv = V::set1f(yi);
  const typename V::F hrv = V::set1f(hr), hiv = V::set1f(hi);
  std::size_t i = 0;
  for (; i + V::W <= count; i += V::W) {
    const typename V::U wv = V::loadu(w + i);
    const typename V::F xr = V::gather(table, V::and_(wv, maskv));
    const typename V::F xi = V::gather(table, V::and_(V::shr(wv, cbits), maskv));
    const typename V::F rr = V::subf(V::mulf(hrv, xr), V::mulf(hiv, xi));
    const typename V::F ri = V::addf(V::mulf(hrv, xi), V::mulf(hiv, xr));
    const typename V::F dr = V::subf(yrv, rr), di = V::subf(yiv, ri);
    V::storef(acc + i, V::addf(V::loadf(acc + i),
                               V::addf(V::mulf(dr, dr), V::mulf(di, di))));
  }
  if (i < count)
    scalar::awgn_csi_accum(w + i, count - i, table, mask, cbits, yr, yi, hr, hi, acc + i);
}

template <class V>
static void awgn_csi_fx_accum_v(const std::uint32_t* w, std::size_t count,
                                const float* table, std::uint32_t mask, int cbits,
                                float yr, float yi, float hr, float hi, float fx_scale,
                                float* acc) {
  const typename V::U maskv = V::set1(mask);
  const typename V::F yrv = V::set1f(yr), yiv = V::set1f(yi);
  const typename V::F hrv = V::set1f(hr), hiv = V::set1f(hi);
  const typename V::F sv = V::set1f(fx_scale);
  std::size_t i = 0;
  for (; i + V::W <= count; i += V::W) {
    const typename V::U wv = V::loadu(w + i);
    const typename V::F xr = V::gather(table, V::and_(wv, maskv));
    const typename V::F xi = V::gather(table, V::and_(V::shr(wv, cbits), maskv));
    // fx_quantise(v, s) = nearbyintf(v*s)/s, lane-wise with the
    // current-rounding-direction round (same default nearest-even).
    const typename V::F rr =
        V::divf(V::roundf_cur(V::mulf(V::subf(V::mulf(hrv, xr), V::mulf(hiv, xi)), sv)), sv);
    const typename V::F ri =
        V::divf(V::roundf_cur(V::mulf(V::addf(V::mulf(hrv, xi), V::mulf(hiv, xr)), sv)), sv);
    const typename V::F dr = V::subf(yrv, rr), di = V::subf(yiv, ri);
    V::storef(acc + i, V::addf(V::loadf(acc + i),
                               V::addf(V::mulf(dr, dr), V::mulf(di, di))));
  }
  if (i < count)
    scalar::awgn_csi_fx_accum(w + i, count - i, table, mask, cbits, yr, yi, hr, hi,
                              fx_scale, acc + i);
}

template <class V>
static void bsc_gather_bit_v(const std::uint32_t* w, std::size_t count, std::uint32_t j,
                             std::uint64_t* acc) {
  std::size_t i = 0;
  for (; i + V::W <= count; i += V::W) V::gather_bits(acc + i, V::loadu(w + i), j);
  if (i < count) scalar::bsc_gather_bit(w + i, count - i, j, acc + i);
}

/// Dense GF(2) row combine, dst ^= src over 64-bit words. XOR is exact
/// in any lane width, so this is bit-identical to the scalar kernel by
/// construction. The vector body reinterprets the u64 words as V::W
/// uint32 lanes only at the load/store boundary (one vector covers
/// V::W / 2 words); the tail stays on plain u64 scalar ops.
template <class V>
static void xor_rows_v(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t words) {
  constexpr std::size_t kStep = V::W / 2;  // u64 words per vector
  std::size_t w = 0;
  for (; w + kStep <= words; w += kStep) {
    std::uint32_t* d = reinterpret_cast<std::uint32_t*>(dst + w);
    const std::uint32_t* s = reinterpret_cast<const std::uint32_t*>(src + w);
    V::storeu(d, V::xor_(V::loadu(d), V::loadu(s)));
  }
  for (; w < words; ++w) dst[w] ^= src[w];
}

// ------------------------------------------------- quantized kernels
// Integer mirrors of the float kernels for the u16/u8-grid path (see
// AwgnLevelQ in backend.h). Pure integer lanes: bit-identity to the
// scalar quantized kernels holds by construction. The metric is one
// pre-tabulated gather + one add per child per symbol — half the
// gathers and a third of the arithmetic of the float metric, which is
// where the quantized path's throughput comes from (the hash chains
// are shared with the float path and equally interleaved).

/// Fused RNG draw + quantized table metric for one symbol (see
/// scalar::awgn_q_sweep). Four vectors per iteration in the hot
/// premixed shape, matching the float sweep's chain interleave.
template <class V, bool kStore>
static void awgn_q_sweep_impl_v(hash::Kind kind, std::uint32_t salt, bool premixed,
                                const std::uint32_t* lanes, std::size_t count,
                                std::uint32_t data, const std::uint16_t* qtab,
                                std::uint32_t qmask, std::uint32_t* w_scratch,
                                std::uint32_t* acc) {
  const typename V::U datav = V::set1(data);
  const typename V::U qmaskv = V::set1(qmask);
  const typename V::U seedv = V::set1(scalar::oaat_seed(salt));
  const auto metric = [&](typename V::U w) {
    return V::gather_u16(qtab, V::and_(w, qmaskv));
  };
  const auto emit = [&](std::size_t at, typename V::U m) {
    if constexpr (kStore)
      V::storeu(acc + at, m);
    else
      V::storeu(acc + at, V::add(V::loadu(acc + at), m));
  };
  std::size_t i = 0;
  if (premixed) {
    for (; i + 4 * V::W <= count; i += 4 * V::W) {
      const typename V::U w0 = oaat_word_v<V>(V::loadu(lanes + i), datav);
      const typename V::U w1 = oaat_word_v<V>(V::loadu(lanes + i + V::W), datav);
      const typename V::U w2 = oaat_word_v<V>(V::loadu(lanes + i + 2 * V::W), datav);
      const typename V::U w3 = oaat_word_v<V>(V::loadu(lanes + i + 3 * V::W), datav);
      emit(i, metric(w0));
      emit(i + V::W, metric(w1));
      emit(i + 2 * V::W, metric(w2));
      emit(i + 3 * V::W, metric(w3));
    }
  }
  for (; i + V::W <= count; i += V::W) {
    typename V::U w;
    if (premixed)
      w = oaat_word_v<V>(V::loadu(lanes + i), datav);
    else if (kind == hash::Kind::kOneAtATime)
      w = oaat_word_v<V>(oaat_word_v<V>(seedv, V::loadu(lanes + i)), datav);
    else if (kind == hash::Kind::kLookup3)
      w = lookup3_pair_v<V>(V::loadu(lanes + i), datav, salt);
    else
      w = salsa20_pair_v<V>(V::loadu(lanes + i), datav, salt);
    emit(i, metric(w));
  }
  if (i < count) {
    if constexpr (kStore)
      scalar::awgn_q_sweep0(kind, salt, premixed, lanes + i, count - i, data, qtab,
                            qmask, w_scratch + i, acc + i);
    else
      scalar::awgn_q_sweep(kind, salt, premixed, lanes + i, count - i, data, qtab,
                           qmask, w_scratch + i, acc + i);
  }
}

/// Quantized d1_prune (see Backend::d1_prune_u16): u16 child metrics
/// widen into u32 lanes, the clamped cost packs with the candidate
/// index into a single u32 key, and the bound filter is one unsigned
/// compare (no 64-bit two-word compare as in the float path).
template <class V>
static std::size_t d1_prune_u16_v(const std::uint16_t* parent_cost,
                                  const std::uint16_t* child_cost, std::size_t count,
                                  std::uint32_t fanout, std::uint32_t cand_base,
                                  std::uint32_t bound_key, std::uint32_t* out_keys) {
  if (fanout < V::W || fanout % V::W != 0)
    return scalar::d1_prune_u16(parent_cost, child_cost, count, fanout, cand_base,
                                bound_key, out_keys);
  constexpr unsigned kFull = (1u << V::W) - 1u;
  const typename V::U boundv = V::set1(bound_key);
  const typename V::U capv = V::set1(65535u);
  const typename V::U iota = V::iota();
  std::size_t sc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t pc = parent_cost[i];
    if ((pc << 16) > bound_key) continue;  // children cost >= pc
    const typename V::U pcv = V::set1(pc);
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; v += static_cast<std::uint32_t>(V::W)) {
      const std::size_t idx = row + v;
      const typename V::U cost =
          V::min_u32(V::add(pcv, V::widen_load_u16(child_cost + idx)), capv);
      const typename V::U key = V::or_(
          V::shl(cost, 16),
          V::add(V::set1(cand_base + static_cast<std::uint32_t>(idx)), iota));
      const unsigned keep = kFull & ~V::gtu_mask(key, boundv);
      if (keep == 0) continue;  // the hot case once the bound bites
      sc += V::compress_store_u32(out_keys + sc, key, keep);
    }
  }
  return sc;
}

/// Full-width quantized finalize over the u32 accumulator (see
/// scalar::d1_finalize_q).
template <class V>
static std::size_t d1_finalize_q_v(const std::uint16_t* parent_cost,
                                   const std::uint32_t* acc, std::size_t count,
                                   std::uint32_t fanout, std::uint32_t cand_base,
                                   std::uint32_t bound_key, std::uint32_t* out_keys) {
  if (fanout < V::W || fanout % V::W != 0)
    return scalar::d1_finalize_q(parent_cost, acc, count, fanout, cand_base, bound_key,
                                 out_keys);
  constexpr unsigned kFull = (1u << V::W) - 1u;
  const typename V::U boundv = V::set1(bound_key);
  const typename V::U capv = V::set1(65535u);
  const typename V::U iota = V::iota();
  std::size_t sc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t pc = parent_cost[i];
    if ((pc << 16) > bound_key) continue;
    const typename V::U pcv = V::set1(pc);
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; v += static_cast<std::uint32_t>(V::W)) {
      const std::size_t idx = row + v;
      const typename V::U cost = V::min_u32(V::add(pcv, V::loadu(acc + idx)), capv);
      const typename V::U key = V::or_(
          V::shl(cost, 16),
          V::add(V::set1(cand_base + static_cast<std::uint32_t>(idx)), iota));
      const unsigned keep = kFull & ~V::gtu_mask(key, boundv);
      if (keep == 0) continue;
      sc += V::compress_store_u32(out_keys + sc, key, keep);
    }
  }
  return sc;
}

/// Quantized partial-cost survivor compression (see
/// scalar::partial_compress_u16). The accumulator already lives in u32
/// lanes, so — unlike the float path — the in-place compress needs no
/// float/uint aliasing and runs on every ISA with the branchless
/// whole-vector store; narrow ISAs still prefer scalar extraction.
template <class V>
static std::size_t partial_compress_u16_v(const std::uint16_t* parent_cost,
                                          std::uint32_t* acc, std::size_t count,
                                          std::uint32_t fanout, std::uint32_t row_floor,
                                          std::uint32_t lane_rest,
                                          std::uint32_t bound_key, std::uint32_t* lanes,
                                          std::uint32_t* idx_out) {
  if constexpr (!V::kFastCompress)
    return scalar::partial_compress_u16(parent_cost, acc, count, fanout, row_floor,
                                        lane_rest, bound_key, lanes, idx_out);
  else if (fanout < V::W || fanout % V::W != 0)
    return scalar::partial_compress_u16(parent_cost, acc, count, fanout, row_floor,
                                        lane_rest, bound_key, lanes, idx_out);
  constexpr unsigned kFull = (1u << V::W) - 1u;
  const typename V::U boundv = V::set1(bound_key);
  const typename V::U capv = V::set1(65535u);
  const typename V::U iota = V::iota();
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t pc = parent_cost[i];
    if ((scalar::quant_clamp(pc + row_floor) << 16) > bound_key) continue;
    const typename V::U prest = V::set1(pc + lane_rest);
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    for (std::uint32_t v = 0; v < fanout; v += static_cast<std::uint32_t>(V::W)) {
      const std::size_t c = row + v;
      const typename V::U a = V::loadu(acc + c);
      const typename V::U iv = V::add(V::set1(static_cast<std::uint32_t>(c)), iota);
      const typename V::U pkey =
          V::or_(V::shl(V::min_u32(V::add(prest, a), capv), 16), iv);
      const unsigned keep = kFull & ~V::gtu_mask(pkey, boundv);
      if (keep == 0) continue;
      const typename V::U lv = V::loadu(lanes + c);
      V::compress_store_u32(acc + n, a, keep);
      V::compress_store_u32(lanes + n, lv, keep);
      n += V::compress_store_u32(idx_out + n, iv, keep);
    }
  }
  return n;
}

/// Quantized final key build over the compressed survivor lanes (see
/// scalar::final_prune_u16; parent costs pre-widened to u32 by the
/// driver so the per-lane gather is a plain 32-bit gather).
template <class V>
static std::size_t final_prune_u16_v(const std::uint32_t* parent32,
                                     const std::uint32_t* acc, const std::uint32_t* idx,
                                     std::size_t n, int log2_fanout,
                                     std::uint32_t cand_base, std::uint32_t bound_key,
                                     std::uint32_t* out_keys) {
  constexpr unsigned kFull = (1u << V::W) - 1u;
  const typename V::U boundv = V::set1(bound_key);
  const typename V::U capv = V::set1(65535u);
  const typename V::U basev = V::set1(cand_base);
  std::size_t sc = 0;
  std::size_t j = 0;
  for (; j + V::W <= n; j += V::W) {
    const typename V::U idxv = V::loadu(idx + j);
    const typename V::U pc = V::gather_u32(parent32, V::shr(idxv, log2_fanout));
    const typename V::U cost = V::min_u32(V::add(pc, V::loadu(acc + j)), capv);
    const typename V::U key = V::or_(V::shl(cost, 16), V::add(basev, idxv));
    const unsigned keep = kFull & ~V::gtu_mask(key, boundv);
    if (keep == 0) continue;
    sc += V::compress_store_u32(out_keys + sc, key, keep);
  }
  if (j < n)
    sc += scalar::final_prune_u16(parent32, acc + j, idx + j, n - j, log2_fanout,
                                  cand_base, bound_key, out_keys + sc);
  return sc;
}

/// Quantized row_mins (see Backend::row_mins_u16): u16 rows widen into
/// u32 lanes for the min fold (unsigned min is order-free), then the
/// fold buffer reduces scalar and folds the leaf cost saturating.
template <class V>
static void row_mins_u16_v(const std::uint16_t* leaf_cost,
                           const std::uint16_t* child_cost, std::size_t leaves,
                           std::uint32_t fanout, std::uint16_t* out) {
  if (fanout < V::W || fanout % V::W != 0) {
    scalar::row_mins_u16(leaf_cost, child_cost, leaves, fanout, out);
    return;
  }
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::size_t row = i * static_cast<std::size_t>(fanout);
    typename V::U acc = V::widen_load_u16(child_cost + row);
    for (std::uint32_t v = static_cast<std::uint32_t>(V::W); v < fanout;
         v += static_cast<std::uint32_t>(V::W))
      acc = V::min_u32(acc, V::widen_load_u16(child_cost + row + v));
    std::uint32_t buf[V::W];
    V::storeu(buf, acc);
    std::uint32_t m = buf[0];
    for (unsigned l = 1; l < V::W; ++l)
      if (buf[l] < m) m = buf[l];
    out[i] = static_cast<std::uint16_t>(scalar::quant_clamp(leaf_cost[i] + m));
  }
}

/// Quantized regroup_emit (see Backend::regroup_emit_u16): same whole-
/// row moves as the float kernel; costs widen, saturate-fold with the
/// leaf cost in u32 lanes, and narrow back to the u16 survivor arena.
template <class V>
static void regroup_emit_u16_v(const std::uint32_t* child_state,
                               const std::uint16_t* child_cost,
                               const std::uint16_t* leaf_cost,
                               const std::uint32_t* leaf_path, std::size_t leaves,
                               std::uint32_t fanout, int k, int d,
                               std::uint32_t group_mask,
                               const std::int32_t* group_rowbase,
                               std::uint32_t* out_state, std::uint16_t* out_cost,
                               std::uint32_t* out_path) {
  constexpr std::uint32_t kMaxFanout = 256;
  if (fanout < V::W || fanout % V::W != 0 || fanout > kMaxFanout || group_mask >= 256) {
    scalar::regroup_emit_u16(child_state, child_cost, leaf_cost, leaf_path, leaves,
                             fanout, k, d, group_mask, group_rowbase, out_state,
                             out_cost, out_path);
    return;
  }
  const int shift = k * (d - 2);
  typename V::U vvec[kMaxFanout / V::W];  // v << shift, per vector step
  const std::uint32_t steps = fanout / static_cast<std::uint32_t>(V::W);
  for (std::uint32_t s = 0; s < steps; ++s)
    vvec[s] = V::shl(V::add(V::set1(s * static_cast<std::uint32_t>(V::W)), V::iota()),
                     shift);
  const typename V::U capv = V::set1(65535u);
  std::uint32_t next[256];
  for (std::uint32_t g = 0; g <= group_mask; ++g)
    next[g] = group_rowbase[g] < 0 ? 0 : static_cast<std::uint32_t>(group_rowbase[g]);
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::uint32_t g = leaf_path[i] & group_mask;
    if (group_rowbase[g] < 0) continue;
    const typename V::U pcv = V::set1(leaf_cost[i]);
    const typename V::U pbase = V::set1(leaf_path[i] >> k);
    const std::size_t src = i * static_cast<std::size_t>(fanout);
    const std::size_t dst = next[g];
    next[g] += fanout;
    for (std::uint32_t s = 0; s < steps; ++s) {
      const std::size_t o = s * V::W;
      V::storeu(out_state + dst + o, V::loadu(child_state + src + o));
      V::narrow_store_u16(
          out_cost + dst + o,
          V::min_u32(V::add(pcv, V::widen_load_u16(child_cost + src + o)), capv));
      V::storeu(out_path + dst + o, V::or_(pbase, vvec[s]));
    }
  }
}

/// The Ops policy the fused expand drivers (expand.h) instantiate with.
template <class V>
struct SimdOps {
  static void hash_n(hash::Kind kind, std::uint32_t salt, const std::uint32_t* states,
                     std::size_t count, std::uint32_t data, std::uint32_t* out) {
    hash_n_v<V>(kind, salt, states, count, data, out);
  }
  static void hash_children(hash::Kind kind, std::uint32_t salt,
                            const std::uint32_t* states, std::size_t count,
                            std::uint32_t fanout, std::uint32_t* out) {
    hash_children_v<V>(kind, salt, states, count, fanout, out);
  }
  static void premix_n(std::uint32_t salt, const std::uint32_t* states,
                       std::size_t count, std::uint32_t* out) {
    premix_n_v<V>(salt, states, count, out);
  }
  static void hash_premixed_n(const std::uint32_t* premixed, std::size_t count,
                              std::uint32_t data, std::uint32_t* out) {
    hash_premixed_n_v<V>(premixed, count, data, out);
  }
  static void awgn_accum(const std::uint32_t* w, std::size_t count, const float* table,
                         std::uint32_t mask, int cbits, float yr, float yi, float* acc) {
    awgn_accum_v<V>(w, count, table, mask, cbits, yr, yi, acc);
  }
  static void awgn_csi_accum(const std::uint32_t* w, std::size_t count,
                             const float* table, std::uint32_t mask, int cbits, float yr,
                             float yi, float hr, float hi, float* acc) {
    awgn_csi_accum_v<V>(w, count, table, mask, cbits, yr, yi, hr, hi, acc);
  }
  static void awgn_csi_fx_accum(const std::uint32_t* w, std::size_t count,
                                const float* table, std::uint32_t mask, int cbits,
                                float yr, float yi, float hr, float hi, float fx_scale,
                                float* acc) {
    awgn_csi_fx_accum_v<V>(w, count, table, mask, cbits, yr, yi, hr, hi, fx_scale, acc);
  }
  static void bsc_gather_bit(const std::uint32_t* w, std::size_t count, std::uint32_t j,
                             std::uint64_t* acc) {
    bsc_gather_bit_v<V>(w, count, j, acc);
  }
  static void hash_children_premix(hash::Kind kind, std::uint32_t salt, bool premix,
                                   const std::uint32_t* states, std::size_t count,
                                   std::uint32_t fanout, std::uint32_t* out_states,
                                   std::uint32_t* out_lanes) {
    hash_children_premix_v<V>(kind, salt, premix, states, count, fanout, out_states,
                              out_lanes);
  }
  static void awgn_sweep(hash::Kind kind, std::uint32_t salt, bool premixed,
                         const std::uint32_t* lanes, std::size_t count,
                         std::uint32_t data, const float* table, std::uint32_t mask,
                         int cbits, float yr, float yi, std::uint32_t* w, float* acc) {
    awgn_sweep_v<V>(kind, salt, premixed, lanes, count, data, table, mask, cbits, yr,
                    yi, w, acc);
  }
  static void awgn_sweep0(hash::Kind kind, std::uint32_t salt, bool premixed,
                          const std::uint32_t* lanes, std::size_t count,
                          std::uint32_t data, const float* table, std::uint32_t mask,
                          int cbits, float yr, float yi, std::uint32_t* w, float* acc) {
    awgn_sweep0_v<V>(kind, salt, premixed, lanes, count, data, table, mask, cbits, yr,
                     yi, w, acc);
  }
  static void bsc_hamming_add(const std::uint64_t* acc, std::size_t count,
                              std::uint64_t rx_word, float* costs) {
    // XOR + popcount per word: the scalar loop compiles to the native
    // popcount instruction in these ISA-flagged TUs already.
    scalar::bsc_hamming_add(acc, count, rx_word, costs);
  }
  static std::size_t d1_prune(const float* parent_cost, const float* child_cost,
                              std::size_t count, std::uint32_t fanout,
                              std::uint32_t cand_base, std::uint64_t bound_key,
                              std::uint64_t* out_keys) {
    return d1_prune_v<V>(parent_cost, child_cost, count, fanout, cand_base, bound_key,
                         out_keys);
  }
  static std::size_t partial_compress(const float* parent_cost, float* acc,
                                      std::size_t count, std::uint32_t fanout,
                                      std::uint64_t bound_key, std::uint32_t* lanes,
                                      std::uint32_t* idx_out) {
    return partial_compress_v<V>(parent_cost, acc, count, fanout, bound_key, lanes,
                                 idx_out);
  }
  static std::size_t final_prune(const float* parent_cost, const float* acc,
                                 const std::uint32_t* idx, std::size_t n,
                                 int log2_fanout, std::uint32_t cand_base,
                                 std::uint64_t bound_key, std::uint64_t* out_keys) {
    return final_prune_v<V>(parent_cost, acc, idx, n, log2_fanout, cand_base,
                            bound_key, out_keys);
  }
  static void row_mins(const float* leaf_cost, const float* child_cost,
                       std::size_t leaves, std::uint32_t fanout, float* out) {
    row_mins_v<V>(leaf_cost, child_cost, leaves, fanout, out);
  }
  static void regroup_emit(const std::uint32_t* child_state, const float* child_cost,
                           const float* leaf_cost, const std::uint32_t* leaf_path,
                           std::size_t leaves, std::uint32_t fanout, int k, int d,
                           std::uint32_t group_mask, const std::int32_t* group_rowbase,
                           std::uint32_t* out_state, float* out_cost,
                           std::uint32_t* out_path) {
    regroup_emit_v<V>(child_state, child_cost, leaf_cost, leaf_path, leaves, fanout, k,
                      d, group_mask, group_rowbase, out_state, out_cost, out_path);
  }
  static void xor_rows(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t words) {
    xor_rows_v<V>(dst, src, words);
  }
  static void awgn_q_sweep(hash::Kind kind, std::uint32_t salt, bool premixed,
                           const std::uint32_t* lanes, std::size_t count,
                           std::uint32_t data, const std::uint16_t* qtab,
                           std::uint32_t qmask, std::uint32_t* w, std::uint32_t* acc) {
    awgn_q_sweep_impl_v<V, false>(kind, salt, premixed, lanes, count, data, qtab,
                                  qmask, w, acc);
  }
  static void awgn_q_sweep0(hash::Kind kind, std::uint32_t salt, bool premixed,
                            const std::uint32_t* lanes, std::size_t count,
                            std::uint32_t data, const std::uint16_t* qtab,
                            std::uint32_t qmask, std::uint32_t* w, std::uint32_t* acc) {
    awgn_q_sweep_impl_v<V, true>(kind, salt, premixed, lanes, count, data, qtab, qmask,
                                 w, acc);
  }
  static std::size_t d1_prune_u16(const std::uint16_t* parent_cost,
                                  const std::uint16_t* child_cost, std::size_t count,
                                  std::uint32_t fanout, std::uint32_t cand_base,
                                  std::uint32_t bound_key, std::uint32_t* out_keys) {
    return d1_prune_u16_v<V>(parent_cost, child_cost, count, fanout, cand_base,
                             bound_key, out_keys);
  }
  static std::size_t d1_finalize_q(const std::uint16_t* parent_cost,
                                   const std::uint32_t* acc, std::size_t count,
                                   std::uint32_t fanout, std::uint32_t cand_base,
                                   std::uint32_t bound_key, std::uint32_t* out_keys) {
    return d1_finalize_q_v<V>(parent_cost, acc, count, fanout, cand_base, bound_key,
                              out_keys);
  }
  static std::size_t partial_compress_u16(const std::uint16_t* parent_cost,
                                          std::uint32_t* acc, std::size_t count,
                                          std::uint32_t fanout, std::uint32_t row_floor,
                                          std::uint32_t lane_rest,
                                          std::uint32_t bound_key, std::uint32_t* lanes,
                                          std::uint32_t* idx_out) {
    return partial_compress_u16_v<V>(parent_cost, acc, count, fanout, row_floor,
                                     lane_rest, bound_key, lanes, idx_out);
  }
  static std::size_t final_prune_u16(const std::uint32_t* parent32,
                                     const std::uint32_t* acc, const std::uint32_t* idx,
                                     std::size_t n, int log2_fanout,
                                     std::uint32_t cand_base, std::uint32_t bound_key,
                                     std::uint32_t* out_keys) {
    return final_prune_u16_v<V>(parent32, acc, idx, n, log2_fanout, cand_base,
                                bound_key, out_keys);
  }
  static void row_mins_u16(const std::uint16_t* leaf_cost,
                           const std::uint16_t* child_cost, std::size_t leaves,
                           std::uint32_t fanout, std::uint16_t* out) {
    row_mins_u16_v<V>(leaf_cost, child_cost, leaves, fanout, out);
  }
  static void regroup_emit_u16(const std::uint32_t* child_state,
                               const std::uint16_t* child_cost,
                               const std::uint16_t* leaf_cost,
                               const std::uint32_t* leaf_path, std::size_t leaves,
                               std::uint32_t fanout, int k, int d,
                               std::uint32_t group_mask,
                               const std::int32_t* group_rowbase,
                               std::uint32_t* out_state, std::uint16_t* out_cost,
                               std::uint32_t* out_path) {
    regroup_emit_u16_v<V>(child_state, child_cost, leaf_cost, leaf_path, leaves,
                          fanout, k, d, group_mask, group_rowbase, out_state, out_cost,
                          out_path);
  }
};

}  // namespace spinal::backend::simd
