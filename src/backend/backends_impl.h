#pragma once
// Internal wiring between the registry (backend.cpp) and the per-ISA
// backend translation units. Not part of the public backend API.

#include <cstddef>
#include <cstdint>

#include "backend/backend.h"

namespace spinal::backend {

// Factories: each returns the TU-local singleton table. A factory is
// only *defined* when its TU is compiled in (SPINAL_BACKEND_HAVE_*);
// the registry references it under the matching #ifdef.
const Backend* scalar_backend() noexcept;
const Backend* sse42_backend() noexcept;
const Backend* avx2_backend() noexcept;
const Backend* neon_backend() noexcept;

// Packed-key B-of-N selection, shared by every backend's table (defined
// in backend.cpp, a baseline TU — never compiled with wide-ISA flags).
// The uint64 keys order exactly like the float comparator (cost, then
// candidate index); the radix partition fixes the kept *set*, sorting
// the kept prefix fixes its *order* — hence arena layout and every
// equal-cost tie-break downstream — identically on every stdlib and
// backend. partition_keys is the set-only half: the streaming
// pipeline's bound refinements run it mid-level, where the kept order
// is irrelevant (the final select re-sorts), so the prefix sort would
// be pure waste.
void shared_build_keys(const float* costs, std::size_t count, std::uint64_t* keys);
void shared_partition_keys(std::uint64_t* keys, std::size_t count, std::size_t keep);
void shared_select_keys(std::uint64_t* keys, std::size_t count, std::size_t keep);

// uint32 variants for the quantized path's narrow packed keys
// (cost << 16 | candidate). Same contract; the full u32 orders as
// (cost, candidate) directly, so the select needs no tie-run fixup.
void shared_partition_keys_u32(std::uint32_t* keys, std::size_t count, std::size_t keep);
void shared_select_keys_u32(std::uint32_t* keys, std::size_t count, std::size_t keep);

}  // namespace spinal::backend
