#pragma once
// LT (Luby Transform) inner code for the Raptor baseline (§8: "an inner
// LT code generated using the degree distribution in the Raptor RFC
// [23]"). Output symbols are randomly addressable: descriptor i is a
// deterministic function of (seed, i), so sender and receiver agree on
// every output symbol's neighbourhood without communication.

#include <cstdint>
#include <vector>

#include "util/bitvec.h"

namespace spinal::raptor {

/// RFC 5053 §5.4.4.2 degree distribution: degrees {1,2,3,4,10,11,40}
/// with the standard cumulative thresholds out of 2^20.
class LtDegreeDistribution {
 public:
  /// Samples a degree from a 20-bit uniform value v in [0, 2^20).
  static int sample(std::uint32_t v) noexcept;

  /// Expected degree (for tests / cost accounting).
  static double mean();
};

class LtGenerator {
 public:
  /// @param num_intermediate  size of the intermediate block the LT code
  ///        draws from (Raptor: precoded info + parity bits)
  LtGenerator(int num_intermediate, std::uint64_t seed);

  int num_intermediate() const noexcept { return m_; }

  /// Neighbour set of output symbol @p index (distinct intermediate
  /// positions; degree per RFC 5053, capped at num_intermediate).
  std::vector<int> neighbors(std::uint32_t index) const;

  /// Output bit @p index for a given intermediate block.
  int output_bit(std::uint32_t index, const util::BitVec& intermediate) const;

 private:
  int m_;
  std::uint64_t seed_;
};

}  // namespace spinal::raptor
