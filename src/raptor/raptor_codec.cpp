#include "raptor/raptor_codec.h"

#include <algorithm>
#include <cmath>

namespace spinal::raptor {
namespace {

constexpr float kClamp = 20.0f;
inline float clamp_llr(float x) noexcept { return std::clamp(x, -kClamp, kClamp); }

/// tanh-rule check update with one fixed "observation" factor.
/// Computes messages to each variable edge given incoming messages.
struct CheckWork {
  std::vector<float> tanhs;
};

}  // namespace

RaptorEncoder::RaptorEncoder(int info_bits, std::uint64_t seed)
    : precode_(info_bits),
      lt_(precode_.intermediate_bits(), seed),
      intermediate_(precode_.intermediate_bits()) {}

void RaptorEncoder::load(const util::BitVec& info) {
  intermediate_ = precode_.expand(info);
}

RaptorDecoder::RaptorDecoder(int info_bits, std::uint64_t seed, int iterations)
    : precode_(info_bits), lt_(precode_.intermediate_bits(), seed),
      iterations_(iterations) {}

void RaptorDecoder::add_coded_bit(std::uint32_t lt_index, float llr) {
  rx_index_.push_back(lt_index);
  rx_llr_.push_back(clamp_llr(llr));
}

void RaptorDecoder::reset() {
  rx_index_.clear();
  rx_llr_.clear();
}

std::optional<util::BitVec> RaptorDecoder::decode(int iterations) {
  if (iterations <= 0) iterations = iterations_;
  const int m = precode_.intermediate_bits();
  const int n_out = static_cast<int>(rx_index_.size());
  const auto& pc_checks = precode_.checks();
  const int n_pc = static_cast<int>(pc_checks.size());

  // Edge lists: factor -> variable. Factors: [0, n_out) LT output nodes
  // (tanh seeded with the channel LLR), [n_out, n_out + n_pc) precode
  // zero checks.
  std::vector<std::vector<int>> factor_vars(n_out + n_pc);
  for (int f = 0; f < n_out; ++f) factor_vars[f] = lt_.neighbors(rx_index_[f]);
  for (int j = 0; j < n_pc; ++j) factor_vars[n_out + j] = pc_checks[j];

  // Flattened edges.
  std::vector<int> offset(factor_vars.size() + 1, 0);
  for (std::size_t f = 0; f < factor_vars.size(); ++f)
    offset[f + 1] = offset[f] + static_cast<int>(factor_vars[f].size());
  const int n_edges = offset.back();
  std::vector<int> edge_var(n_edges);
  for (std::size_t f = 0; f < factor_vars.size(); ++f)
    std::copy(factor_vars[f].begin(), factor_vars[f].end(), edge_var.begin() + offset[f]);

  std::vector<std::vector<int>> var_edges(m);
  for (int e = 0; e < n_edges; ++e) var_edges[edge_var[e]].push_back(e);

  std::vector<float> f2v(n_edges, 0.0f);  // factor -> variable messages
  std::vector<float> v2f(n_edges, 0.0f);  // variable -> factor messages
  std::vector<float> posterior(m, 0.0f);

  util::BitVec intermediate(m);

  for (int it = 0; it < iterations; ++it) {
    // Factor update.
    for (std::size_t f = 0; f < factor_vars.size(); ++f) {
      const int begin = offset[f], end = offset[f + 1];
      // Observation tanh: LT factors carry the channel LLR of the coded
      // bit; precode checks are hard zero constraints (tanh = 1).
      float obs = 1.0f;
      if (f < static_cast<std::size_t>(n_out))
        obs = std::tanh(0.5f * rx_llr_[f]);

      float prod = obs;
      int zeros = 0;
      int zero_edge = -1;
      for (int e = begin; e < end; ++e) {
        const float t = std::tanh(0.5f * v2f[e]);
        if (std::fabs(t) < 1e-12f) {
          ++zeros;
          zero_edge = e;
        } else {
          prod *= t;
        }
      }
      for (int e = begin; e < end; ++e) {
        float t_excl;
        if (zeros == 0) {
          t_excl = prod / std::tanh(0.5f * v2f[e]);
        } else if (zeros == 1) {
          t_excl = (e == zero_edge) ? prod : 0.0f;
        } else {
          t_excl = 0.0f;
        }
        t_excl = std::clamp(t_excl, -0.999999f, 0.999999f);
        f2v[e] = clamp_llr(2.0f * std::atanh(t_excl));
      }
    }

    // Variable update (no intrinsic channel term: intermediate bits are
    // never transmitted directly).
    for (int v = 0; v < m; ++v) {
      float sum = 0.0f;
      for (int e : var_edges[v]) sum += f2v[e];
      posterior[v] = sum;
      for (int e : var_edges[v]) v2f[e] = clamp_llr(sum - f2v[e]);
    }

    // Early exit when the hard decision satisfies the whole graph.
    for (int v = 0; v < m; ++v) intermediate.set(v, posterior[v] < 0);
    bool ok = true;
    for (int j = 0; j < n_pc && ok; ++j) {
      int acc = 0;
      for (int v : pc_checks[j]) acc ^= intermediate.get(v) ? 1 : 0;
      ok = (acc == 0);
    }
    for (int f = 0; f < n_out && ok; ++f) {
      int acc = rx_llr_[f] < 0 ? 1 : 0;
      for (int v : factor_vars[f]) acc ^= intermediate.get(v) ? 1 : 0;
      // Channel bits may genuinely be noisy; don't require them to match.
      (void)acc;
    }
    if (ok && it >= 1) break;
  }

  // Verify the precode; it acts as the decoder's internal consistency
  // check (§8's framework validates against the transmitted message).
  bool consistent = true;
  for (int j = 0; j < n_pc && consistent; ++j) {
    int acc = 0;
    for (int v : pc_checks[j]) acc ^= intermediate.get(v) ? 1 : 0;
    consistent = (acc == 0);
  }
  if (!consistent) return std::nullopt;

  // Correlation test against the received soft bits: a correct decode
  // predicts coded bits that agree with the channel LLRs far beyond
  // chance; an under-determined all-zeros "solution" does not. 5-sigma
  // threshold under the null (random signs).
  double corr = 0.0, energy = 0.0;
  for (int f = 0; f < n_out; ++f) {
    int predicted = 0;
    for (int v : factor_vars[f]) predicted ^= intermediate.get(v) ? 1 : 0;
    corr += (predicted ? -1.0 : 1.0) * rx_llr_[f];
    energy += static_cast<double>(rx_llr_[f]) * rx_llr_[f];
  }
  if (corr < 5.0 * std::sqrt(energy)) return std::nullopt;

  util::BitVec info(precode_.info_bits());
  for (int i = 0; i < precode_.info_bits(); ++i) info.set(i, intermediate.get(i));
  return info;
}

}  // namespace spinal::raptor
