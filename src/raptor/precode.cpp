#include "raptor/precode.h"

#include <cmath>
#include <stdexcept>

#include "backend/backend.h"
#include "util/prng.h"

namespace spinal::raptor {

RaptorPrecode::RaptorPrecode(int info_bits, double rate, int left_degree,
                             std::uint64_t seed)
    : k_(info_bits) {
  if (info_bits < 1) throw std::invalid_argument("RaptorPrecode: info_bits must be >= 1");
  if (rate <= 0.0 || rate >= 1.0)
    throw std::invalid_argument("RaptorPrecode: rate must be in (0,1)");
  if (left_degree < 1) throw std::invalid_argument("RaptorPrecode: left_degree must be >= 1");

  r_ = static_cast<int>(std::ceil(info_bits / rate)) - info_bits;
  if (r_ < 1) r_ = 1;
  if (left_degree > r_) left_degree = r_;

  checks_.resize(r_);
  row_words_ = (static_cast<std::size_t>(r_) + 63) / 64;
  rows_.assign(static_cast<std::size_t>(k_) * row_words_, 0);
  util::Xoshiro256 rng(seed ^ (static_cast<std::uint64_t>(info_bits) << 20));
  for (int i = 0; i < k_; ++i) {
    // left_degree distinct checks for info bit i.
    int chosen[8];
    int count = 0;
    while (count < left_degree) {
      const int c = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(r_)));
      bool dup = false;
      for (int j = 0; j < count; ++j) dup |= (chosen[j] == c);
      if (!dup) chosen[count++] = c;
    }
    std::uint64_t* row = rows_.data() + static_cast<std::size_t>(i) * row_words_;
    for (int j = 0; j < count; ++j) {
      checks_[chosen[j]].push_back(i);
      row[chosen[j] >> 6] |= 1ull << (chosen[j] & 63);
    }
  }
  // Close each check with its parity bit.
  for (int j = 0; j < r_; ++j) checks_[j].push_back(k_ + j);
}

util::BitVec RaptorPrecode::expand(const util::BitVec& info) const {
  if (info.size() != static_cast<std::size_t>(k_))
    throw std::invalid_argument("RaptorPrecode::expand: wrong info length");
  util::BitVec out(k_ + r_);
  // Parity = XOR of the packed generator rows of the set info bits,
  // accumulated through the backend's dense row-combine kernel (pure
  // GF(2), so bit-identical to the old per-check scan on any backend).
  const backend::Backend& be = backend::active();
  std::vector<std::uint64_t> parity(row_words_, 0);
  for (int i = 0; i < k_; ++i) {
    const bool bit = info.get(i);
    out.set(i, bit);
    if (bit) be.xor_rows(parity.data(), rows_.data() + static_cast<std::size_t>(i) * row_words_, row_words_);
  }
  for (int j = 0; j < r_; ++j) out.set(k_ + j, (parity[j >> 6] >> (j & 63)) & 1);
  return out;
}

}  // namespace spinal::raptor
