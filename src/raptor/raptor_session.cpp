#include "raptor/raptor_session.h"

#include <cmath>

#include "util/bitvec.h"

namespace spinal::raptor {

RaptorSession::RaptorSession(const RaptorSessionConfig& config)
    : config_(config),
      encoder_(config.info_bits, config.seed),
      decoder_(config.info_bits, config.seed, config.bp_iterations),
      qam_(config.bits_per_symbol) {}

void RaptorSession::start(const util::BitVec& message) {
  encoder_.load(message);
  decoder_.reset();
  next_bit_ = 0;
  rx_bit_ = 0;
  // BP cannot possibly succeed before the intermediate block is covered;
  // skip attempts below ~85% of that many received bits.
  min_bits_to_try_ =
      static_cast<std::size_t>(0.85 * encoder_.precode().intermediate_bits());
}

std::vector<std::complex<float>> RaptorSession::next_chunk() {
  std::vector<std::complex<float>> out;
  out.reserve(config_.chunk_symbols);
  util::BitVec bits(static_cast<std::size_t>(config_.bits_per_symbol));
  for (int s = 0; s < config_.chunk_symbols; ++s) {
    for (int b = 0; b < config_.bits_per_symbol; ++b)
      bits.set(b, encoder_.coded_bit(next_bit_++));
    out.push_back(qam_.map(bits, 0));
  }
  return out;
}

void RaptorSession::receive_chunk(std::span<const std::complex<float>> y,
                                  std::span<const std::complex<float>> csi) {
  std::vector<float> llrs;
  llrs.reserve(y.size() * config_.bits_per_symbol);
  for (std::size_t i = 0; i < y.size(); ++i) {
    std::complex<float> yi = y[i];
    if (!csi.empty()) {
      // Coherent equalisation with known h (Fig 8-4 regime): divide out
      // the channel and scale the noise variance accordingly.
      const float mag2 = std::norm(csi[i]);
      if (mag2 > 1e-12f) {
        yi = y[i] * std::conj(csi[i]) / mag2;
        std::vector<float> tmp;
        qam_.demap_soft(yi, noise_var_ / mag2, tmp);
        for (float l : tmp) llrs.push_back(l);
        continue;
      }
    }
    qam_.demap_soft(yi, noise_var_, llrs);
  }
  for (float l : llrs) decoder_.add_coded_bit(rx_bit_++, l);
}

std::optional<util::BitVec> RaptorSession::try_decode() {
  if (decoder_.bits_received() < min_bits_to_try_) return std::nullopt;
  return decoder_.decode();
}

std::optional<util::BitVec> RaptorSession::try_decode_with(
    sim::CodecWorkspace* /*ws*/, int effort) {
  if (decoder_.bits_received() < min_bits_to_try_) return std::nullopt;
  return decoder_.decode(effort);
}

int RaptorSession::max_chunks() const {
  const long max_bits =
      static_cast<long>(config_.info_bits) * config_.max_passes_equiv;
  const long bits_per_chunk =
      static_cast<long>(config_.chunk_symbols) * config_.bits_per_symbol;
  return static_cast<int>(max_bits / bits_per_chunk + 1);
}

}  // namespace spinal::raptor
