#pragma once
// Raptor codec: LT inner code over a rate-0.95 LDGM precode, decoded by
// joint belief propagation over the combined factor graph with soft
// channel input (the Palanki-Yedidia style AWGN extension of §8).

#include <cstdint>
#include <optional>
#include <vector>

#include "raptor/lt.h"
#include "raptor/precode.h"
#include "util/bitvec.h"

namespace spinal::raptor {

class RaptorEncoder {
 public:
  RaptorEncoder(int info_bits, std::uint64_t seed = 0x5053);

  int info_bits() const noexcept { return precode_.info_bits(); }
  const RaptorPrecode& precode() const noexcept { return precode_; }
  const LtGenerator& lt() const noexcept { return lt_; }

  /// Prepares the intermediate block for @p info.
  void load(const util::BitVec& info);

  /// Rateless coded bit stream: bit @p index (any index, any order).
  int coded_bit(std::uint32_t index) const {
    return lt_.output_bit(index, intermediate_);
  }

 private:
  RaptorPrecode precode_;
  LtGenerator lt_;
  util::BitVec intermediate_;
};

/// Joint BP decoder. Received coded bits arrive as LLRs keyed by their
/// LT output index; decode attempts run over everything so far.
class RaptorDecoder {
 public:
  /// @param iterations  BP iterations per attempt (40, as for LDPC §8)
  RaptorDecoder(int info_bits, std::uint64_t seed = 0x5053, int iterations = 40);

  int info_bits() const noexcept { return precode_.info_bits(); }
  std::size_t bits_received() const noexcept { return rx_index_.size(); }

  /// Adds one received coded bit (LLR = log P(0)/P(1)).
  void add_coded_bit(std::uint32_t lt_index, float llr);

  /// One BP decode attempt. Returns the info-bit estimate; nullopt when
  /// the posterior fails the precode checks (caller may also CRC-check).
  std::optional<util::BitVec> decode() { return decode(0); }

  /// Iteration-capped form (the runtime's effort knob): @p iterations
  /// <= 0 runs the configured count, so effort 0 is bit-identical to
  /// the plain decode().
  std::optional<util::BitVec> decode(int iterations);

  void reset();

 private:
  RaptorPrecode precode_;
  LtGenerator lt_;
  int iterations_;

  std::vector<std::uint32_t> rx_index_;
  std::vector<float> rx_llr_;
};

}  // namespace spinal::raptor
