#pragma once
// Raptor outer precode (§8: "an outer LDPC code as suggested by
// Shokrollahi with ... outer code rate 0.95 with a regular left degree
// of 4 and a binomial right degree").
//
// Systematic LDGM structure: the intermediate block is [info | parity];
// each info bit participates in exactly 4 parity checks chosen
// uniformly (so check fan-in is binomial), and parity bit j is the XOR
// of the info bits in check j. The decoder uses the same checks as
// zero-constraint factor nodes.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitvec.h"

namespace spinal::raptor {

class RaptorPrecode {
 public:
  /// @param info_bits    message size k
  /// @param rate         outer code rate (intermediate = k / rate)
  /// @param left_degree  checks per info bit
  RaptorPrecode(int info_bits, double rate = 0.95, int left_degree = 4,
                std::uint64_t seed = 0xA07EAull);

  int info_bits() const noexcept { return k_; }
  int parity_bits() const noexcept { return r_; }
  int intermediate_bits() const noexcept { return k_ + r_; }

  /// [info | parity] intermediate block for @p info.
  util::BitVec expand(const util::BitVec& info) const;

  /// Check j's members as intermediate indices (info members plus the
  /// parity index k + j). XOR over each check of a valid block is 0.
  const std::vector<std::vector<int>>& checks() const noexcept { return checks_; }

 private:
  int k_;
  int r_;
  std::vector<std::vector<int>> checks_;
  // Packed generator rows for expand(): row i is info bit i's parity
  // membership as an r_-bit bitmap, so the parity block is the XOR of
  // the rows of the set info bits — a dense GF(2) row combine served
  // by the backend kernel table (Backend::xor_rows).
  std::size_t row_words_;
  std::vector<std::uint64_t> rows_;
};

}  // namespace spinal::raptor
