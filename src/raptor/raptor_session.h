#pragma once
// RatelessSession adapter for the Raptor baseline over dense QAM (§8:
// "results for the dense QAM-256 constellation as well as QAM-64").
// Coded bits are packed bits_per_symbol at a time into Gray-mapped QAM
// symbols; the receiver demaps to per-bit LLRs and runs joint BP.

#include <algorithm>
#include <cstdint>

#include "modem/qam.h"
#include "raptor/raptor_codec.h"
#include "sim/session.h"

namespace spinal::raptor {

struct RaptorSessionConfig {
  int info_bits = 9500;        ///< paper's Raptor block size (Fig 8-1)
  int bits_per_symbol = 8;     ///< 8 = QAM-256, 6 = QAM-64
  int chunk_symbols = 64;      ///< symbols per engine chunk
  int bp_iterations = 40;
  int max_passes_equiv = 60;   ///< give-up bound, in multiples of k bits
  std::uint64_t seed = 0x5053;
};

class RaptorSession : public sim::RatelessSession {
 public:
  explicit RaptorSession(const RaptorSessionConfig& config);

  int message_bits() const override { return config_.info_bits; }
  void start(const util::BitVec& message) override;
  std::vector<std::complex<float>> next_chunk() override;
  void receive_chunk(std::span<const std::complex<float>> y,
                     std::span<const std::complex<float>> csi) override;
  std::optional<util::BitVec> try_decode() override;
  /// Effort = BP iteration cap. Raptor rebuilds the joint factor graph
  /// per attempt, so there is no pinnable workspace yet (@p ws is
  /// ignored; the runtime counts these attempts as unpinned).
  std::optional<util::BitVec> try_decode_with(sim::CodecWorkspace* ws,
                                              int effort) override;
  sim::EffortProfile effort_profile() const override {
    return {config_.bp_iterations, std::min(4, config_.bp_iterations)};
  }
  int max_chunks() const override;
  void set_noise_hint(double noise_variance) override { noise_var_ = noise_variance; }

 private:
  RaptorSessionConfig config_;
  RaptorEncoder encoder_;
  RaptorDecoder decoder_;
  modem::QamModem qam_;
  std::uint32_t next_bit_ = 0;      // next LT output index to transmit
  std::uint32_t rx_bit_ = 0;        // next LT output index at the receiver
  double noise_var_ = 1.0;          // demapper noise estimate (engine SNR)
  std::size_t min_bits_to_try_ = 0; // skip hopeless BP runs
};

}  // namespace spinal::raptor
