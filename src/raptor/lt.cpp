#include "raptor/lt.h"

#include <stdexcept>

#include "util/prng.h"

namespace spinal::raptor {

namespace {
// RFC 5053 degree distribution: f[] are cumulative thresholds out of
// 2^20; d[] the corresponding degrees.
constexpr std::uint32_t kF[] = {10241, 491582, 712794, 831695, 948446, 1032189, 1048576};
constexpr int kD[] = {1, 2, 3, 4, 10, 11, 40};
constexpr int kBuckets = 7;
}  // namespace

int LtDegreeDistribution::sample(std::uint32_t v) noexcept {
  v &= (1u << 20) - 1;
  for (int i = 0; i < kBuckets; ++i)
    if (v < kF[i]) return kD[i];
  return kD[kBuckets - 1];
}

double LtDegreeDistribution::mean() {
  double mean = 0.0;
  std::uint32_t prev = 0;
  for (int i = 0; i < kBuckets; ++i) {
    mean += static_cast<double>(kF[i] - prev) / (1u << 20) * kD[i];
    prev = kF[i];
  }
  return mean;
}

LtGenerator::LtGenerator(int num_intermediate, std::uint64_t seed)
    : m_(num_intermediate), seed_(seed) {
  if (num_intermediate < 1)
    throw std::invalid_argument("LtGenerator: need at least one intermediate symbol");
}

std::vector<int> LtGenerator::neighbors(std::uint32_t index) const {
  // Deterministic per-symbol PRNG stream.
  util::Xoshiro256 rng(seed_ ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  int degree = LtDegreeDistribution::sample(static_cast<std::uint32_t>(rng.next_u64()));
  if (degree > m_) degree = m_;

  std::vector<int> out;
  out.reserve(degree);
  while (static_cast<int>(out.size()) < degree) {
    const int cand = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(m_)));
    bool dup = false;
    for (int v : out) dup |= (v == cand);
    if (!dup) out.push_back(cand);
  }
  return out;
}

int LtGenerator::output_bit(std::uint32_t index, const util::BitVec& intermediate) const {
  int acc = 0;
  for (int v : neighbors(index)) acc ^= intermediate.get(v) ? 1 : 0;
  return acc;
}

}  // namespace spinal::raptor
